package mlaas

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fxhenn/internal/telemetry"
)

// hammerScale reads FXHENN_HAMMER_ITERS, the multiplier the nightly CI
// workflow sets to turn the -race consistency tests into long hammers.
// Unset or invalid means 1: the regular suite stays fast.
func hammerScale() int {
	if n, err := strconv.Atoi(os.Getenv("FXHENN_HAMMER_ITERS")); err == nil && n > 1 {
		return n
	}
	return 1
}

// metricsFixture is a TCP fixture with a live registry and slow-request
// log capture.
type metricsFixture struct {
	*tcpFixture
	reg  *telemetry.Registry
	slow *lockedBuffer
}

// lockedBuffer is a goroutine-safe bytes.Buffer for log capture.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (lb *lockedBuffer) Write(p []byte) (int, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.Write(p)
}

func (lb *lockedBuffer) String() string {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.String()
}

func newMetricsFixture(t testing.TB, cfg Config) *metricsFixture {
	t.Helper()
	reg := telemetry.NewRegistry()
	slow := &lockedBuffer{}
	cfg.Metrics = reg
	if cfg.SlowRequestThreshold > 0 {
		cfg.SlowRequestLog = slow
	}
	return &metricsFixture{tcpFixture: newTCPFixture(t, cfg), reg: reg, slow: slow}
}

// counterValue reads one labeled counter out of a snapshot (0 if absent).
func counterValue(t testing.TB, snap telemetry.Snapshot, name string, labels ...telemetry.Label) int64 {
	t.Helper()
	fam := snap.Family(name)
	if fam == nil {
		return 0
	}
	m := fam.Metric(labels...)
	if m == nil {
		return 0
	}
	return int64(m.Value)
}

// TestTelemetryFullInference: one clean inference populates the status
// counter, every lifecycle phase histogram, the whole-request histogram,
// and the per-layer families — with layer op counts exactly matching the
// network's layer set — and the in-flight gauge returns to zero.
func TestTelemetryFullInference(t *testing.T) {
	fx := newMetricsFixture(t, Config{})
	conn := fx.dial(t)
	if _, err := fx.client.Infer(context.Background(), conn, randomImage(3)); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	snap := fx.reg.Snapshot()
	if got := counterValue(t, snap, MetricRequestsTotal, telemetry.L("status", StatusOK.String())); got != 1 {
		t.Fatalf("requests_total{status=ok} = %d, want 1", got)
	}
	req := snap.Family(MetricRequestSeconds).Metric()
	if req == nil || req.Count != 1 {
		t.Fatalf("request histogram count = %+v, want 1 observation", req)
	}
	for _, ph := range []string{"queue", "decode", "validate", "evaluate", "encode"} {
		m := snap.Family(MetricPhaseSeconds).Metric(telemetry.L("phase", ph))
		if m == nil || m.Count != 1 {
			t.Fatalf("phase %q histogram missing or empty: %+v", ph, m)
		}
	}
	if g := snap.Family(MetricInflight).Metric(); g == nil || g.Value != 0 {
		t.Fatalf("inflight gauge = %+v, want 0 after completion", g)
	}

	// Per-layer families: one metric per network layer, HOPs positive, and
	// the totals equal to a dry-run count of the same network (the layer
	// metrics are harvested from the live ckks trace, so they must agree).
	rec := fx.henet.Count(fx.params.MaxLevel())
	var hops, ks int64
	for _, l := range fx.henet.Layers {
		lbls := []telemetry.Label{telemetry.L("net", fx.henet.Name), telemetry.L("layer", l.Name())}
		h := counterValue(t, snap, MetricLayerHOPs, lbls...)
		if h <= 0 {
			t.Fatalf("layer %s: no HOPs recorded", l.Name())
		}
		hops += h
		ks += counterValue(t, snap, MetricLayerKS, lbls...)
		sec := snap.Family(MetricLayerSeconds).Metric(lbls...)
		if sec == nil || sec.Count != 1 {
			t.Fatalf("layer %s: wall-time histogram missing or empty", l.Name())
		}
	}
	if int(hops) != rec.TotalHOPs() || int(ks) != rec.TotalKeySwitches() {
		t.Fatalf("layer metrics %d/%d != dry-run trace %d/%d", hops, ks, rec.TotalHOPs(), rec.TotalKeySwitches())
	}
}

// TestRequestIDsInFailureMessages: server-side failure messages carry the
// monotonic request id, so a client-observed error correlates with the
// server's slow-request log and telemetry.
func TestRequestIDsInFailureMessages(t *testing.T) {
	fx := newMetricsFixture(t, Config{})
	for want := 1; want <= 3; want++ {
		conn := fx.dial(t)
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 9999) // hostile count
		if _, err := conn.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		st, msg := readFailure(t, conn, 2*time.Second)
		conn.Close()
		if st != StatusBadRequest {
			t.Fatalf("status %v, want bad request", st)
		}
		if !strings.HasPrefix(msg, fmt.Sprintf("req %d: ", want)) {
			t.Fatalf("failure message %q missing monotonic id prefix %q", msg, fmt.Sprintf("req %d: ", want))
		}
	}
}

// TestSlowRequestLogBreakdown: a request over the threshold emits one
// structured line with the request id, status, per-phase spans, and the
// per-layer evaluate breakdown with op counts.
func TestSlowRequestLogBreakdown(t *testing.T) {
	fx := newMetricsFixture(t, Config{SlowRequestThreshold: time.Nanosecond})
	conn := fx.dial(t)
	if _, err := fx.client.Infer(context.Background(), conn, randomImage(5)); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The log line is written inside outcome(), before the response reaches
	// the client, so it is visible by now — but poll briefly to be safe
	// against scheduling of the handler goroutine's tail.
	deadline := time.Now().Add(2 * time.Second)
	var line string
	for time.Now().Before(deadline) {
		if line = fx.slow.String(); strings.Contains(line, "slow request") {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{
		"mlaas: slow request", "req=1", "status=ok",
		"decode", "evaluate", "encode",
		fx.henet.Layers[0].Name(), "hops=",
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow log missing %q:\n%s", want, line)
		}
	}
	if got := counterValue(t, fx.reg.Snapshot(), MetricSlowRequests); got != 1 {
		t.Fatalf("slow_requests_total = %d, want 1", got)
	}
}

// TestStatsSnapshotConsistentUnderLoad hammers Stats() from readers while
// a mix of good and bad requests completes concurrently; under -race this
// pins that every counter mutation and the snapshot read are synchronized,
// and the final snapshot accounts for every request exactly once.
func TestStatsSnapshotConsistentUnderLoad(t *testing.T) {
	// FXHENN_HAMMER_ITERS (the nightly CI knob) multiplies the load; the
	// exact-count assertions below hold at any scale.
	var (
		goodReqs = 4 * hammerScale()
		badReqs  = 12 * hammerScale()
	)
	// Enough slots for every request at once: on a loaded runner the
	// arrivals can bunch, and a busy refusal would shift a request from
	// the bad-request column this test pins exact counts for.
	fx := newMetricsFixture(t, Config{MaxConcurrent: goodReqs + badReqs})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: continuously snapshot Stats and check internal consistency
	// (no negative counters, no torn combination).
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := fx.server.Stats()
				if st.Served < 0 || st.BadRequests < 0 || st.Rejected < 0 || st.Panics < 0 {
					t.Error("negative counter in snapshot")
					return
				}
				fx.reg.Snapshot()
			}
		}()
	}

	var work sync.WaitGroup
	for i := 0; i < goodReqs; i++ {
		work.Add(1)
		go func(seed int64) {
			defer work.Done()
			cl := NewClient(fx.params, fx.henet, fx.pk, fx.sk, 700+seed)
			conn := fx.dial(t)
			defer conn.Close()
			if _, err := cl.Infer(context.Background(), conn, randomImage(seed)); err != nil {
				t.Errorf("good request failed: %v", err)
			}
		}(int64(i))
	}
	for i := 0; i < badReqs; i++ {
		work.Add(1)
		go func() {
			defer work.Done()
			conn := fx.dial(t)
			defer conn.Close()
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], 9999)
			if _, err := conn.Write(hdr[:]); err != nil {
				t.Errorf("writing bad request: %v", err)
				return
			}
			readFailure(t, conn, 5*time.Second)
		}()
	}
	work.Wait()
	close(stop)
	wg.Wait()

	st := fx.server.Stats()
	if st.Served != goodReqs || st.BadRequests != badReqs || st.Panics != 0 {
		t.Fatalf("final stats %+v, want served=%d bad=%d", st, goodReqs, badReqs)
	}
	snap := fx.reg.Snapshot()
	ok := counterValue(t, snap, MetricRequestsTotal, telemetry.L("status", StatusOK.String()))
	bad := counterValue(t, snap, MetricRequestsTotal, telemetry.L("status", StatusBadRequest.String()))
	if ok != int64(goodReqs) || bad != int64(badReqs) {
		t.Fatalf("telemetry counters ok=%d bad=%d, want %d/%d", ok, bad, goodReqs, badReqs)
	}
	if g := snap.Family(MetricInflight).Metric(); g.Value != 0 {
		t.Fatalf("inflight = %v after all requests done", g.Value)
	}
}

// TestFaultPanicWithTelemetry re-runs the deep-evaluation-panic fault with
// the full telemetry stack enabled: the panic is still confined to one
// request, the internal-status counter ticks, and the server serves the
// next inference cleanly.
func TestFaultPanicWithTelemetry(t *testing.T) {
	fx := newMetricsFixture(t, Config{SlowRequestThreshold: time.Nanosecond})
	fx.server.testEvalHook = func() { panic("injected evaluator fault") }

	conn := fx.dial(t)
	_, err := fx.client.Infer(context.Background(), conn, randomImage(7))
	conn.Close()
	se, ok := err.(*StatusError)
	if !ok || se.Code != StatusInternal {
		t.Fatalf("want StatusInternal, got %v", err)
	}
	if !strings.Contains(se.Msg, "req 1: ") {
		t.Fatalf("panic failure message %q missing request id", se.Msg)
	}

	fx.server.testEvalHook = nil
	fx.mustInferOK(t, 8)

	snap := fx.reg.Snapshot()
	if got := counterValue(t, snap, MetricRequestsTotal, telemetry.L("status", StatusInternal.String())); got != 1 {
		t.Fatalf("requests_total{status=internal} = %d, want 1", got)
	}
	if got := counterValue(t, snap, MetricRequestsTotal, telemetry.L("status", StatusOK.String())); got != 1 {
		t.Fatalf("requests_total{status=ok} = %d, want 1", got)
	}
	if fx.server.Stats().Panics != 1 {
		t.Fatalf("Panics = %d, want 1", fx.server.Stats().Panics)
	}
}

// TestDigestLine: the one-line digest reflects the counters and evaluate
// quantiles, and RunDigest emits it periodically until stopped.
func TestDigestLine(t *testing.T) {
	fx := newMetricsFixture(t, Config{})
	d := fx.server.NewDigest()

	conn := fx.dial(t)
	if _, err := fx.client.Infer(context.Background(), conn, randomImage(11)); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	line := d.Line()
	for _, want := range []string{"served=1", "busy_refused=0", "bad=0", "panics=0"} {
		if !strings.Contains(line, want) {
			t.Fatalf("digest %q missing %q", line, want)
		}
	}
	if strings.Contains(line, "evaluate_p50=n/a") {
		t.Fatalf("digest %q: evaluate quantiles should be live after an inference", line)
	}

	// RunDigest: emits at least one line, stops when told.
	buf := &lockedBuffer{}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		fx.server.RunDigest(buf, 10*time.Millisecond, stop)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !strings.Contains(buf.String(), "mlaas: digest") {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	<-done
	if !strings.Contains(buf.String(), "mlaas: digest") {
		t.Fatalf("RunDigest emitted nothing:\n%s", buf.String())
	}

	// Disabled configurations never start.
	fx.server.RunDigest(nil, time.Second, stop)
	fx.server.RunDigest(buf, 0, stop)
}

// TestTelemetryDisabledNoTrace: with no registry and no slow threshold the
// server takes the untraced path (observes() false) and still works.
func TestTelemetryDisabledNoTrace(t *testing.T) {
	fx := newTCPFixture(t, Config{})
	if fx.server.observes() {
		t.Fatal("server with zero Config should not observe")
	}
	fx.mustInferOK(t, 15)
}
