package ntt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fxhenn/internal/modarith"
	"fxhenn/internal/primes"
)

func randomPoly(n int, q uint64, rng *rand.Rand) []uint64 {
	p := make([]uint64, n)
	for i := range p {
		p[i] = rng.Uint64() % q
	}
	return p
}

// schoolbookNegacyclic is the reference O(N^2) product in Z_q[X]/(X^N+1).
func schoolbookNegacyclic(a, b []uint64, m modarith.Modulus) []uint64 {
	n := len(a)
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := m.Mul(a[i], b[j])
			k := i + j
			if k < n {
				out[k] = m.Add(out[k], p)
			} else {
				out[k-n] = m.Sub(out[k-n], p) // X^N = -1 wraps with sign flip
			}
		}
	}
	return out
}

func TestNewTableValidation(t *testing.T) {
	q := primes.GenerateNTTPrimes(30, 10, 1)[0]
	for _, n := range []int{0, 1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTable(%d, q) did not panic", n)
				}
			}()
			NewTable(n, q)
		}()
	}
	// q not ≡ 1 mod 2N must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewTable with NTT-unfriendly modulus did not panic")
			}
		}()
		NewTable(1024, 65537+2) // 65539 is prime but 2048 does not divide 65538
	}()
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 8, 64, 256, 1024} {
		for _, bitsz := range []int{17, 30, 45} {
			q := primes.GenerateNTTPrimes(bitsz, log2(n), 1)[0]
			tab := NewTable(n, q)
			a := randomPoly(n, q, rng)
			orig := append([]uint64(nil), a...)
			tab.Forward(a)
			tab.Inverse(a)
			for i := range a {
				if a[i] != orig[i] {
					t.Fatalf("n=%d q=%d: roundtrip mismatch at %d: %d != %d", n, q, i, a[i], orig[i])
				}
			}
		}
	}
}

func TestMulPolyMatchesSchoolbook(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 16, 64, 128} {
		q := primes.GenerateNTTPrimes(30, log2(n), 1)[0]
		tab := NewTable(n, q)
		for trial := 0; trial < 5; trial++ {
			a := randomPoly(n, q, rng)
			b := randomPoly(n, q, rng)
			want := schoolbookNegacyclic(a, b, tab.Mod)
			got := make([]uint64, n)
			tab.MulPoly(got, a, b)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial=%d: coeff %d: got %d want %d", n, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestNTTLinearity: NTT(a + b) == NTT(a) + NTT(b), via testing/quick over
// random polynomial pairs.
func TestNTTLinearity(t *testing.T) {
	const n = 64
	q := primes.GenerateNTTPrimes(30, log2(n), 1)[0]
	tab := NewTable(n, q)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPoly(n, q, rng)
		b := randomPoly(n, q, rng)
		sum := make([]uint64, n)
		tab.Mod.AddVec(sum, a, b)
		tab.Forward(sum)
		tab.Forward(a)
		tab.Forward(b)
		for i := range sum {
			if sum[i] != tab.Mod.Add(a[i], b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestNegacyclicWrap verifies the defining property X^N ≡ -1: multiplying by
// X rotates coefficients with a sign flip on wrap-around.
func TestNegacyclicWrap(t *testing.T) {
	const n = 32
	q := primes.GenerateNTTPrimes(30, log2(n), 1)[0]
	tab := NewTable(n, q)
	rng := rand.New(rand.NewSource(3))
	a := randomPoly(n, q, rng)
	x := make([]uint64, n) // the monomial X
	x[1] = 1
	got := make([]uint64, n)
	tab.MulPoly(got, a, x)
	if got[0] != tab.Mod.Neg(a[n-1]) {
		t.Fatalf("wrap coefficient: got %d want %d", got[0], tab.Mod.Neg(a[n-1]))
	}
	for i := 1; i < n; i++ {
		if got[i] != a[i-1] {
			t.Fatalf("shift coefficient %d: got %d want %d", i, got[i], a[i-1])
		}
	}
}

func TestTransformPanicsOnWrongLength(t *testing.T) {
	q := primes.GenerateNTTPrimes(30, 5, 1)[0]
	tab := NewTable(32, q)
	for _, f := range []func([]uint64){tab.Forward, tab.Inverse} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("wrong-length transform did not panic")
				}
			}()
			f(make([]uint64, 16))
		}()
	}
}

func TestMulPolyLeavesInputsUntouched(t *testing.T) {
	const n = 16
	q := primes.GenerateNTTPrimes(30, log2(n), 1)[0]
	tab := NewTable(n, q)
	rng := rand.New(rand.NewSource(4))
	a := randomPoly(n, q, rng)
	b := randomPoly(n, q, rng)
	ac := append([]uint64(nil), a...)
	bc := append([]uint64(nil), b...)
	out := make([]uint64, n)
	tab.MulPoly(out, a, b)
	for i := range a {
		if a[i] != ac[i] || b[i] != bc[i] {
			t.Fatal("MulPoly modified its inputs")
		}
	}
}

func log2(n int) int {
	l := 0
	for 1<<uint(l) < n {
		l++
	}
	return l
}

func BenchmarkForwardN8192(b *testing.B) {
	q := primes.GenerateNTTPrimes(30, 13, 1)[0]
	tab := NewTable(8192, q)
	rng := rand.New(rand.NewSource(5))
	a := randomPoly(8192, q, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Forward(a)
	}
}

func BenchmarkInverseN8192(b *testing.B) {
	q := primes.GenerateNTTPrimes(30, 13, 1)[0]
	tab := NewTable(8192, q)
	rng := rand.New(rand.NewSource(6))
	a := randomPoly(8192, q, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Inverse(a)
	}
}

func BenchmarkForwardN16384(b *testing.B) {
	q := primes.GenerateNTTPrimes(36, 14, 1)[0]
	tab := NewTable(16384, q)
	rng := rand.New(rand.NewSource(7))
	a := randomPoly(16384, q, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Forward(a)
	}
}
