// Package ntt implements the negacyclic number-theoretic transform over
// Z_q[X]/(X^N+1), the fundamental building block of the Rescale and
// KeySwitch HE operations and — per the paper's first observation (§III) —
// the performance bottleneck of the whole HE-CNN accelerator.
//
// The implementation follows the merged-twist iterative algorithm of Longa &
// Naehrig: the forward transform folds the ψ^i twisting into the butterfly
// twiddles (stored in bit-reversed order), so polynomial multiplication is
// NTT → pointwise → INTT with no separate bit-reversal or twisting passes.
//
// Parallelism contract: a Table is immutable after NewTable, so Forward and
// Inverse are safe to call concurrently on distinct coefficient slices. A
// single transform is intentionally single-threaded — parallelism lives one
// layer up, in package ring, which dispatches one transform per RNS limb to
// the shared worker pool (each limb is an independent Table).
package ntt

import (
	"fmt"
	"math/bits"

	"fxhenn/internal/modarith"
	"fxhenn/internal/primes"
)

// Table holds the precomputed twiddle factors for transforms of length N
// over a single RNS modulus q.
type Table struct {
	N   int
	Mod modarith.Modulus

	psiRev    []modarith.MulConst // ψ^bitrev(i), Shoup form, forward butterflies
	psiInvRev []modarith.MulConst // ψ^-bitrev(i), inverse butterflies
	nInv      modarith.MulConst   // N^-1 mod q, folded into the inverse pass
}

// NewTable precomputes twiddles for length-n transforms modulo q. n must be
// a power of two and q ≡ 1 (mod 2n).
func NewTable(n int, q uint64) *Table {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("ntt: length %d is not a power of two ≥ 2", n))
	}
	if (q-1)%uint64(2*n) != 0 {
		panic(fmt.Sprintf("ntt: modulus %d is not NTT-friendly for N=%d", q, n))
	}
	mod := modarith.NewModulus(q)
	psi := primes.MinimalPrimitiveRootOfUnity(q, uint64(2*n))
	psiInv := mod.Inv(psi)

	logN := bits.TrailingZeros(uint(n))
	t := &Table{
		N:         n,
		Mod:       mod,
		psiRev:    make([]modarith.MulConst, n),
		psiInvRev: make([]modarith.MulConst, n),
	}
	fwd, inv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		r := reverseBits(uint32(i), logN)
		t.psiRev[r] = modarith.NewMulConst(mod, fwd)
		t.psiInvRev[r] = modarith.NewMulConst(mod, inv)
		fwd = mod.Mul(fwd, psi)
		inv = mod.Mul(inv, psiInv)
	}
	t.nInv = modarith.NewMulConst(mod, mod.Inv(uint64(n)))
	return t
}

func reverseBits(v uint32, n int) uint32 {
	return bits.Reverse32(v) >> (32 - uint(n))
}

// The butterflies below are David Harvey's lazy variants: intermediate
// values are NOT reduced to [0, q) between stages. The forward transform
// keeps the invariant "stage inputs < 4q" (one conditional subtraction of 2q
// per butterfly restores it), the inverse keeps "stage inputs < 2q", and a
// single full-reduction pass at the end restores the canonical range — so
// the transforms stay bit-identical to eager Barrett versions while dropping
// two reductions per butterfly. Correctness of the Shoup product for ANY
// 64-bit operand (given w < q) is what lets operands in [0, 4q) flow
// straight into the next stage; q < 2^62 (the NewModulus contract) keeps
// u + 2q - vw below 2^64.

// ctButterfly is the lazy Cooley-Tukey butterfly (u, v) -> (u + w·v, u - w·v)
// with inputs < 4q and outputs < 4q.
func ctButterfly(u, v, w, wShoup, q, twoQ uint64) (uint64, uint64) {
	if u >= twoQ {
		u -= twoQ
	}
	qhat, _ := bits.Mul64(v, wShoup)
	vw := v*w - qhat*q // Shoup lazy product, in [0, 2q)
	return u + vw, u + twoQ - vw
}

// gsButterfly is the lazy Gentleman-Sande butterfly (u, v) -> (u + v, w·(u - v))
// with inputs < 2q and outputs < 2q.
func gsButterfly(u, v, w, wShoup, q, twoQ uint64) (uint64, uint64) {
	s := u + v
	if s >= twoQ {
		s -= twoQ
	}
	d := u + twoQ - v // in [0, 4q), a valid Shoup operand
	qhat, _ := bits.Mul64(d, wShoup)
	return s, d*w - qhat*q
}

// Forward transforms a (length N, coefficients < q) in place from coefficient
// representation to the negacyclic evaluation (NTT) domain.
func (t *Table) Forward(a []uint64) {
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: length %d != N=%d", len(a), t.N))
	}
	q := t.Mod.Q
	twoQ := 2 * q
	n := t.N
	tt := n
	for m := 1; m < n; m <<= 1 {
		tt >>= 1
		for i := 0; i < m; i++ {
			j1 := 2 * i * tt
			w := t.psiRev[m+i]
			wv, ws := w.W, w.WShoup
			x := a[j1 : j1+tt : j1+tt]
			y := a[j1+tt : j1+2*tt : j1+2*tt]
			if tt >= 8 {
				for j := 0; j < tt; j += 8 {
					xa := (*[8]uint64)(x[j:])
					ya := (*[8]uint64)(y[j:])
					xa[0], ya[0] = ctButterfly(xa[0], ya[0], wv, ws, q, twoQ)
					xa[1], ya[1] = ctButterfly(xa[1], ya[1], wv, ws, q, twoQ)
					xa[2], ya[2] = ctButterfly(xa[2], ya[2], wv, ws, q, twoQ)
					xa[3], ya[3] = ctButterfly(xa[3], ya[3], wv, ws, q, twoQ)
					xa[4], ya[4] = ctButterfly(xa[4], ya[4], wv, ws, q, twoQ)
					xa[5], ya[5] = ctButterfly(xa[5], ya[5], wv, ws, q, twoQ)
					xa[6], ya[6] = ctButterfly(xa[6], ya[6], wv, ws, q, twoQ)
					xa[7], ya[7] = ctButterfly(xa[7], ya[7], wv, ws, q, twoQ)
				}
			} else {
				for j := range x {
					x[j], y[j] = ctButterfly(x[j], y[j], wv, ws, q, twoQ)
				}
			}
		}
	}
	// Collapse the lazy range [0, 4q) to the canonical [0, q).
	nn := n &^ 7
	for j := 0; j < nn; j += 8 {
		z := (*[8]uint64)(a[j:])
		z[0] = reduce4Q(z[0], q, twoQ)
		z[1] = reduce4Q(z[1], q, twoQ)
		z[2] = reduce4Q(z[2], q, twoQ)
		z[3] = reduce4Q(z[3], q, twoQ)
		z[4] = reduce4Q(z[4], q, twoQ)
		z[5] = reduce4Q(z[5], q, twoQ)
		z[6] = reduce4Q(z[6], q, twoQ)
		z[7] = reduce4Q(z[7], q, twoQ)
	}
	for j := nn; j < n; j++ {
		a[j] = reduce4Q(a[j], q, twoQ)
	}
}

func reduce4Q(r, q, twoQ uint64) uint64 {
	if r >= twoQ {
		r -= twoQ
	}
	if r >= q {
		r -= q
	}
	return r
}

// Inverse transforms a in place from the NTT domain back to coefficient
// representation, including the 1/N normalization.
func (t *Table) Inverse(a []uint64) {
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: length %d != N=%d", len(a), t.N))
	}
	mod := t.Mod
	q := mod.Q
	twoQ := 2 * q
	n := t.N
	tt := 1
	for m := n; m > 1; m >>= 1 {
		j1 := 0
		h := m >> 1
		for i := 0; i < h; i++ {
			w := t.psiInvRev[h+i]
			wv, ws := w.W, w.WShoup
			x := a[j1 : j1+tt : j1+tt]
			y := a[j1+tt : j1+2*tt : j1+2*tt]
			if tt >= 8 {
				for j := 0; j < tt; j += 8 {
					xa := (*[8]uint64)(x[j:])
					ya := (*[8]uint64)(y[j:])
					xa[0], ya[0] = gsButterfly(xa[0], ya[0], wv, ws, q, twoQ)
					xa[1], ya[1] = gsButterfly(xa[1], ya[1], wv, ws, q, twoQ)
					xa[2], ya[2] = gsButterfly(xa[2], ya[2], wv, ws, q, twoQ)
					xa[3], ya[3] = gsButterfly(xa[3], ya[3], wv, ws, q, twoQ)
					xa[4], ya[4] = gsButterfly(xa[4], ya[4], wv, ws, q, twoQ)
					xa[5], ya[5] = gsButterfly(xa[5], ya[5], wv, ws, q, twoQ)
					xa[6], ya[6] = gsButterfly(xa[6], ya[6], wv, ws, q, twoQ)
					xa[7], ya[7] = gsButterfly(xa[7], ya[7], wv, ws, q, twoQ)
				}
			} else {
				for j := range x {
					x[j], y[j] = gsButterfly(x[j], y[j], wv, ws, q, twoQ)
				}
			}
			j1 += 2 * tt
		}
		tt <<= 1
	}
	// The closing Shoup multiply by 1/N accepts the lazy [0, 2q) range and
	// returns canonical residues, so no separate reduction pass is needed.
	for j := 0; j < n; j++ {
		a[j] = t.nInv.Mul(a[j], mod)
	}
}

// MulPoly computes the negacyclic product out = a * b mod (X^N+1, q) for
// coefficient-domain inputs, leaving a and b untouched. It is a convenience
// for tests and for callers that do not manage the NTT domain themselves.
func (t *Table) MulPoly(out, a, b []uint64) {
	ta := make([]uint64, t.N)
	tb := make([]uint64, t.N)
	copy(ta, a)
	copy(tb, b)
	t.Forward(ta)
	t.Forward(tb)
	t.Mod.MulVec(out, ta, tb)
	t.Inverse(out)
}
