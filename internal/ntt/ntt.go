// Package ntt implements the negacyclic number-theoretic transform over
// Z_q[X]/(X^N+1), the fundamental building block of the Rescale and
// KeySwitch HE operations and — per the paper's first observation (§III) —
// the performance bottleneck of the whole HE-CNN accelerator.
//
// The implementation follows the merged-twist iterative algorithm of Longa &
// Naehrig: the forward transform folds the ψ^i twisting into the butterfly
// twiddles (stored in bit-reversed order), so polynomial multiplication is
// NTT → pointwise → INTT with no separate bit-reversal or twisting passes.
//
// Parallelism contract: a Table is immutable after NewTable, so Forward and
// Inverse are safe to call concurrently on distinct coefficient slices. A
// single transform is intentionally single-threaded — parallelism lives one
// layer up, in package ring, which dispatches one transform per RNS limb to
// the shared worker pool (each limb is an independent Table).
package ntt

import (
	"fmt"
	"math/bits"

	"fxhenn/internal/modarith"
	"fxhenn/internal/primes"
)

// Table holds the precomputed twiddle factors for transforms of length N
// over a single RNS modulus q.
type Table struct {
	N   int
	Mod modarith.Modulus

	psiRev    []modarith.MulConst // ψ^bitrev(i), Shoup form, forward butterflies
	psiInvRev []modarith.MulConst // ψ^-bitrev(i), inverse butterflies
	nInv      modarith.MulConst   // N^-1 mod q, folded into the inverse pass
}

// NewTable precomputes twiddles for length-n transforms modulo q. n must be
// a power of two and q ≡ 1 (mod 2n).
func NewTable(n int, q uint64) *Table {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("ntt: length %d is not a power of two ≥ 2", n))
	}
	if (q-1)%uint64(2*n) != 0 {
		panic(fmt.Sprintf("ntt: modulus %d is not NTT-friendly for N=%d", q, n))
	}
	mod := modarith.NewModulus(q)
	psi := primes.MinimalPrimitiveRootOfUnity(q, uint64(2*n))
	psiInv := mod.Inv(psi)

	logN := bits.TrailingZeros(uint(n))
	t := &Table{
		N:         n,
		Mod:       mod,
		psiRev:    make([]modarith.MulConst, n),
		psiInvRev: make([]modarith.MulConst, n),
	}
	fwd, inv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		r := reverseBits(uint32(i), logN)
		t.psiRev[r] = modarith.NewMulConst(mod, fwd)
		t.psiInvRev[r] = modarith.NewMulConst(mod, inv)
		fwd = mod.Mul(fwd, psi)
		inv = mod.Mul(inv, psiInv)
	}
	t.nInv = modarith.NewMulConst(mod, mod.Inv(uint64(n)))
	return t
}

func reverseBits(v uint32, n int) uint32 {
	return bits.Reverse32(v) >> (32 - uint(n))
}

// Forward transforms a (length N, coefficients < q) in place from coefficient
// representation to the negacyclic evaluation (NTT) domain.
func (t *Table) Forward(a []uint64) {
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: length %d != N=%d", len(a), t.N))
	}
	mod := t.Mod
	n := t.N
	tt := n
	for m := 1; m < n; m <<= 1 {
		tt >>= 1
		for i := 0; i < m; i++ {
			j1 := 2 * i * tt
			j2 := j1 + tt
			w := t.psiRev[m+i]
			for j := j1; j < j2; j++ {
				// Cooley-Tukey butterfly: (a, b) -> (a + w·b, a - w·b)
				u := a[j]
				v := w.Mul(a[j+tt], mod)
				a[j] = mod.Add(u, v)
				a[j+tt] = mod.Sub(u, v)
			}
		}
	}
}

// Inverse transforms a in place from the NTT domain back to coefficient
// representation, including the 1/N normalization.
func (t *Table) Inverse(a []uint64) {
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: length %d != N=%d", len(a), t.N))
	}
	mod := t.Mod
	n := t.N
	tt := 1
	for m := n; m > 1; m >>= 1 {
		j1 := 0
		h := m >> 1
		for i := 0; i < h; i++ {
			j2 := j1 + tt
			w := t.psiInvRev[h+i]
			for j := j1; j < j2; j++ {
				// Gentleman-Sande butterfly: (a, b) -> (a + b, w·(a - b))
				u := a[j]
				v := a[j+tt]
				a[j] = mod.Add(u, v)
				a[j+tt] = w.Mul(mod.Sub(u, v), mod)
			}
			j1 += 2 * tt
		}
		tt <<= 1
	}
	for j := 0; j < n; j++ {
		a[j] = t.nInv.Mul(a[j], mod)
	}
}

// MulPoly computes the negacyclic product out = a * b mod (X^N+1, q) for
// coefficient-domain inputs, leaving a and b untouched. It is a convenience
// for tests and for callers that do not manage the NTT domain themselves.
func (t *Table) MulPoly(out, a, b []uint64) {
	ta := make([]uint64, t.N)
	tb := make([]uint64, t.N)
	copy(ta, a)
	copy(tb, b)
	t.Forward(ta)
	t.Forward(tb)
	t.Mod.MulVec(out, ta, tb)
	t.Inverse(out)
}
