package ckks

import (
	"math"
	"math/big"
)

// Scalar and negation conveniences: the small operations downstream users
// reach for constantly when composing HE programs by hand (bias folds,
// polynomial evaluation, normalization). All are cheap elementwise passes.

// NegNew returns -ct.
func (ev *Evaluator) NegNew(ct *Ciphertext) *Ciphertext {
	r := ev.params.Ring()
	out := ct.Copy()
	for _, p := range out.Value {
		r.Neg(p, p)
	}
	ev.record(OpCCadd, ct.Level())
	return out
}

// AddConstNew returns ct + c with the scalar broadcast across every slot.
// The constant is injected directly into the polynomial's constant
// coefficient at the ciphertext's scale — no plaintext encoding, no level
// or KeySwitch cost.
func (ev *Evaluator) AddConstNew(ct *Ciphertext, c float64) *Ciphertext {
	r := ev.params.Ring()
	out := ct.Copy()
	level := ct.Level()

	// A constant vector's canonical embedding is the constant polynomial
	// c·Δ. Adding it in the NTT domain means adding c·Δ to every
	// evaluation point, i.e. to every NTT coefficient.
	scaled := new(big.Float).SetFloat64(c * ct.Scale)
	iv := new(big.Int)
	scaled.Int(iv)
	for i := 0; i < level; i++ {
		qi := new(big.Int).SetUint64(r.Moduli[i])
		rem := new(big.Int).Mod(iv, qi)
		if rem.Sign() < 0 {
			rem.Add(rem, qi)
		}
		v := rem.Uint64()
		row := out.Value[0].Coeffs[i]
		m := r.Mods[i]
		for j := range row {
			row[j] = m.Add(row[j], v)
		}
	}
	ev.record(OpPCadd, level)
	return out
}

// MulByConstNew returns ct · c for a real scalar, consuming one level (the
// scalar is carried at the parameter scale and a Rescale is expected to
// follow, exactly as for PCmult).
func (ev *Evaluator) MulByConstNew(ct *Ciphertext, c float64) *Ciphertext {
	r := ev.params.Ring()
	out := NewCiphertext(ev.params, len(ct.Value), ct.Level())
	out.Scale = ct.Scale * ev.params.Scale

	scaled := math.Round(c * ev.params.Scale)
	for i, p := range ct.Value {
		for row := 0; row < p.K(); row++ {
			m := r.Mods[row]
			var v uint64
			if scaled >= 0 {
				v = m.Reduce(uint64(scaled))
			} else {
				v = m.Neg(m.Reduce(uint64(-scaled)))
			}
			m.ScalarMulVec(out.Value[i].Coeffs[row], p.Coeffs[row], v)
		}
	}
	ev.record(OpPCmult, ct.Level())
	return out
}

// SubPlainNew returns ct − pt.
func (ev *Evaluator) SubPlainNew(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	level := ct.Level()
	if pt.Level() < level {
		panic("ckks: PCsub plaintext level below ciphertext level")
	}
	checkScales(ct.Scale, pt.Scale)
	r := ev.params.Ring()
	out := ct.Copy()
	r.Sub(out.Value[0], out.Value[0], truncate(pt.Value, level))
	ev.record(OpPCadd, level)
	return out
}
