package ckks

import (
	"math/rand"
	"sync"
	"testing"

	"fxhenn/internal/parallel"
)

// pipelineInputs encrypts two fixed random vectors. The encryptor's PRNG is
// stateful, so inputs are made once per context and shared; evaluation
// itself is deterministic and safe to repeat concurrently.
func pipelineInputs(tc *testContext) (a, b *Ciphertext) {
	rng := rand.New(rand.NewSource(77))
	slots := tc.params.Slots()
	a = tc.encryptVec(randVec(slots, 1, rng), 4)
	b = tc.encryptVec(randVec(slots, 1, rng), 4)
	return a, b
}

// evalPipeline runs a fixed mix of every HE operation and returns the
// digests of each intermediate, so serial and parallel runs can be compared
// bit-for-bit.
func evalPipeline(tc *testContext, a, b *Ciphertext) []string {
	var digests []string
	add := tc.eval.AddNew(a, b)
	digests = append(digests, add.Digest())
	mul := tc.eval.MulNew(a, b) // CCmult + relinearize (keyswitch)
	digests = append(digests, mul.Digest())
	rs := tc.eval.RescaleNew(mul)
	digests = append(digests, rs.Digest())
	rot := tc.eval.RotateNew(a, 4) // automorphism + keyswitch
	digests = append(digests, rot.Digest())
	hs := tc.eval.RotateHoisted(rs, []int{1, 2, 4, 8}) // shared decomposition
	for _, k := range []int{1, 2, 4, 8} {
		digests = append(digests, hs[k].Digest())
	}
	return digests
}

// TestParallelMatchesSerialDigests pins the tentpole's determinism
// guarantee: with a multi-worker pool attached, every HE operation —
// including key-switching and hoisted rotations — produces ciphertexts
// bit-identical to the serial evaluator.
func TestParallelMatchesSerialDigests(t *testing.T) {
	rots := []int{1, 2, 4, 8}
	serial := newTestContext(t, rots)
	par := newTestContext(t, rots) // separate Parameters → separate ring
	par.eval.Trace = nil           // contract: concurrent-safe iff Trace nil
	pool := parallel.New(4)        // force real workers even on 1 CPU
	par.params.AttachPool(pool)
	defer par.params.AttachPool(nil)

	sa, sb := pipelineInputs(serial)
	pa, pb := pipelineInputs(par) // same seeds → bit-identical inputs
	if sa.Digest() != pa.Digest() || sb.Digest() != pb.Digest() {
		t.Fatal("contexts with equal seeds produced different inputs")
	}

	want := evalPipeline(serial, sa, sb)
	got := evalPipeline(par, pa, pb)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("step %d: parallel digest %s != serial %s", i, got[i], want[i])
		}
	}
	if st := pool.Stats(); st.Dispatched+st.Inline == 0 {
		t.Fatal("pool never executed an item — parallel path not exercised")
	}
}

// TestConcurrentEvaluatorsShareRing hammers one Parameters/ring (and one
// pool) from many goroutines, the mlaas sharing shape; run under -race.
func TestConcurrentEvaluatorsShareRing(t *testing.T) {
	rots := []int{1, 2, 4, 8}
	tc := newTestContext(t, rots)
	tc.eval.Trace = nil
	pool := parallel.New(3)
	tc.params.AttachPool(pool)
	defer tc.params.AttachPool(nil)

	a, b := pipelineInputs(tc)
	want := evalPipeline(tc, a, b)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := evalPipeline(tc, a, b)
			for i := range want {
				if got[i] != want[i] {
					errs <- "concurrent evaluation diverged from serial digests"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
