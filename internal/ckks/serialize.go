package ckks

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"

	"fxhenn/internal/ring"
)

// ErrMalformed marks deserialization failures caused by the byte stream
// itself (bad tag, implausible header fields, inconsistent structure) as
// opposed to transport errors. Callers such as the MLaaS server use
// errors.Is(err, ErrMalformed) to map corrupt client data to a
// bad-request status instead of an internal error.
var ErrMalformed = errors.New("malformed serialized data")

// Binary serialization of CKKS elements and key material, used by the
// MLaaS protocol (client encrypts and ships ciphertexts; the server holds
// evaluation keys) and by anyone persisting encrypted state. Format: a
// one-byte kind tag, fixed little-endian headers, then raw RNS rows.

const (
	tagCiphertext byte = 0xC1
	tagPlaintext  byte = 0xC2
	tagPublicKey  byte = 0xC3
	tagSwitchKey  byte = 0xC4
)

// maxSerializedParts bounds ciphertext degree on the wire.
const maxSerializedParts = 8

// WriteTo serializes the ciphertext.
func (ct *Ciphertext) WriteTo(w io.Writer) (int64, error) {
	var n int64
	hdr := [10]byte{tagCiphertext}
	hdr[1] = byte(len(ct.Value))
	binary.LittleEndian.PutUint64(hdr[2:], math.Float64bits(ct.Scale))
	m, err := w.Write(hdr[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	for _, p := range ct.Value {
		mm, err := p.WriteTo(w)
		n += mm
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadCiphertext deserializes a ciphertext under the given parameters.
func ReadCiphertext(r io.Reader, params Parameters) (*Ciphertext, error) {
	hdr := [10]byte{}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != tagCiphertext {
		return nil, fmt.Errorf("ckks: %w: bad ciphertext tag 0x%02x", ErrMalformed, hdr[0])
	}
	parts := int(hdr[1])
	if parts < 1 || parts > maxSerializedParts {
		return nil, fmt.Errorf("ckks: %w: implausible ciphertext degree %d", ErrMalformed, parts)
	}
	ct := &Ciphertext{Scale: math.Float64frombits(binary.LittleEndian.Uint64(hdr[2:]))}
	// The scale of any ciphertext a correct peer produces lies between 1
	// (fully rescaled) and the squared encoding scale (transiently, after a
	// multiplication before rescale); anything outside is corrupt bytes.
	if ct.Scale < 1 || ct.Scale > math.Exp2(float64(4*params.QBits)) ||
		math.IsNaN(ct.Scale) || math.IsInf(ct.Scale, 0) {
		return nil, fmt.Errorf("ckks: %w: implausible ciphertext scale %g", ErrMalformed, ct.Scale)
	}
	// Every structural bound is checked before the corresponding
	// allocation: ring.ReadPoly caps the RNS row count and degree from the
	// header before allocating rows, and the cross-part level check runs
	// as each part arrives, so a stream whose parts disagree is rejected
	// without reading (or allocating) the remainder.
	for i := 0; i < parts; i++ {
		p, err := ring.ReadPoly(r, params.L, params.N())
		if err != nil {
			return nil, err
		}
		if len(p.Coeffs[0]) != params.N() {
			return nil, fmt.Errorf("ckks: %w: ring degree mismatch %d != %d", ErrMalformed, len(p.Coeffs[0]), params.N())
		}
		if i > 0 && p.K() != ct.Value[0].K() {
			return nil, fmt.Errorf("ckks: %w: inconsistent ciphertext levels %d != %d", ErrMalformed, p.K(), ct.Value[0].K())
		}
		ct.Value = append(ct.Value, p)
	}
	return ct, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Digest returns the hex-encoded SHA-256 of the ciphertext's serialized
// form. Two ciphertexts digest equal iff every RNS residue, the scale and
// the degree are bit-identical — the equality the parallel-vs-serial
// determinism tests pin.
func (ct *Ciphertext) Digest() string {
	h := sha256.New()
	if _, err := ct.WriteTo(h); err != nil {
		panic(err) // hash.Hash never errors on Write
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SerializedSize returns the exact wire size of the ciphertext.
func (ct *Ciphertext) SerializedSize() int {
	n := 10
	for _, p := range ct.Value {
		n += p.SerializedSize()
	}
	return n
}

// Digest returns the hex-encoded SHA-256 of the plaintext's serialized
// form — the witness of the Plaintext reuse contract: using a plaintext
// as an evaluator operand never changes its digest.
func (pt *Plaintext) Digest() string {
	h := sha256.New()
	if _, err := pt.WriteTo(h); err != nil {
		panic(err) // hash.Hash never errors on Write
	}
	return hex.EncodeToString(h.Sum(nil))
}

// WriteTo serializes the plaintext (scale, NTT flag, poly).
func (pt *Plaintext) WriteTo(w io.Writer) (int64, error) {
	var n int64
	hdr := [11]byte{tagPlaintext}
	binary.LittleEndian.PutUint64(hdr[1:], math.Float64bits(pt.Scale))
	if pt.IsNTT {
		hdr[9] = 1
	}
	m, err := w.Write(hdr[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	mm, err := pt.Value.WriteTo(w)
	return n + mm, err
}

// ReadPlaintext deserializes a plaintext.
func ReadPlaintext(r io.Reader, params Parameters) (*Plaintext, error) {
	hdr := [11]byte{}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != tagPlaintext {
		return nil, fmt.Errorf("ckks: %w: bad plaintext tag 0x%02x", ErrMalformed, hdr[0])
	}
	pt := &Plaintext{
		Scale: math.Float64frombits(binary.LittleEndian.Uint64(hdr[1:])),
		IsNTT: hdr[9] == 1,
	}
	var err error
	pt.Value, err = ring.ReadPoly(r, params.L, params.N())
	return pt, err
}

// WriteTo serializes the public key.
func (pk *PublicKey) WriteTo(w io.Writer) (int64, error) {
	var n int64
	m, err := w.Write([]byte{tagPublicKey})
	n += int64(m)
	if err != nil {
		return n, err
	}
	for _, p := range []*ring.Poly{pk.B, pk.A} {
		mm, err := p.WriteTo(w)
		n += mm
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadPublicKey deserializes a public key.
func ReadPublicKey(r io.Reader, params Parameters) (*PublicKey, error) {
	tag := [1]byte{}
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return nil, err
	}
	if tag[0] != tagPublicKey {
		return nil, fmt.Errorf("ckks: %w: bad public key tag 0x%02x", ErrMalformed, tag[0])
	}
	b, err := ring.ReadPoly(r, params.L, params.N())
	if err != nil {
		return nil, err
	}
	a, err := ring.ReadPoly(r, params.L, params.N())
	if err != nil {
		return nil, err
	}
	return &PublicKey{B: b, A: a}, nil
}

// WriteTo serializes a switching key (all digits; the paper's "large data
// volume" keyswitch keys).
func (swk *SwitchingKey) WriteTo(w io.Writer) (int64, error) {
	var n int64
	hdr := [3]byte{tagSwitchKey, byte(len(swk.B)), 0}
	m, err := w.Write(hdr[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	for i := range swk.B {
		for _, p := range []*ring.Poly{swk.B[i], swk.A[i]} {
			mm, err := p.WriteTo(w)
			n += mm
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// ReadSwitchingKey deserializes a switching key.
func ReadSwitchingKey(r io.Reader, params Parameters) (*SwitchingKey, error) {
	hdr := [3]byte{}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != tagSwitchKey {
		return nil, fmt.Errorf("ckks: %w: bad switching key tag 0x%02x", ErrMalformed, hdr[0])
	}
	digits := int(hdr[1])
	if digits < 1 || digits > params.L {
		return nil, fmt.Errorf("ckks: %w: implausible digit count %d", ErrMalformed, digits)
	}
	swk := &SwitchingKey{}
	full := params.L + 1
	for i := 0; i < digits; i++ {
		b, err := ring.ReadPoly(r, full, params.N())
		if err != nil {
			return nil, err
		}
		a, err := ring.ReadPoly(r, full, params.N())
		if err != nil {
			return nil, err
		}
		swk.B = append(swk.B, b)
		swk.A = append(swk.A, a)
	}
	return swk, nil
}
