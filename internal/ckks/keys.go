package ckks

import (
	"fmt"

	"fxhenn/internal/ring"
)

// SecretKey is a ternary RLWE secret, stored in the NTT domain over the full
// basis (all q_i plus the special prime) so it can act on keyswitching keys.
type SecretKey struct {
	Value *ring.Poly
}

// PublicKey is a fresh RLWE encryption of zero over the q-basis:
// B = -A·s + e, so B + A·s ≈ 0. Stored in NTT domain.
type PublicKey struct {
	B, A *ring.Poly
}

// SwitchingKey switches a ciphertext component from some source secret s'
// to the canonical secret s. It holds one (B_i, A_i) RLWE pair per RNS digit
// (the paper's KeySwitch keys, which it notes are "read-only and in large
// data volume" and therefore stored off-chip). All polys are NTT-domain over
// the full basis including the special prime.
type SwitchingKey struct {
	B, A []*ring.Poly
}

// RelinearizationKey switches the degree-2 term s² back to s after CCmult.
type RelinearizationKey struct {
	SwitchingKey
}

// RotationKeys holds Galois keys indexed by automorphism exponent g.
type RotationKeys struct {
	Keys map[uint64]*SwitchingKey
}

// KeyGenerator samples key material deterministically.
type KeyGenerator struct {
	params  Parameters
	sampler *ring.Sampler
}

// NewKeyGenerator creates a generator with the given seed.
func NewKeyGenerator(params Parameters, seed int64) *KeyGenerator {
	return &KeyGenerator{params: params, sampler: ring.NewSampler(params.Ring(), seed)}
}

// GenSecretKey samples a ternary secret over the full basis.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	r := kg.params.Ring()
	s := kg.sampler.Ternary(r.MaxLevel())
	r.NTT(s)
	return &SecretKey{Value: s}
}

// GenPublicKey produces an encryption-of-zero public key over the q-basis.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	r := kg.params.Ring()
	l := kg.params.L
	a := kg.sampler.Uniform(l)
	e := kg.sampler.Error(l)
	r.NTT(a)
	r.NTT(e)
	b := r.NewPoly(l)
	skQ := truncate(sk.Value, l)
	r.MulCoeffs(b, a, skQ) // b = a·s
	r.Neg(b, b)            // b = -a·s
	r.Add(b, b, e)         // b = -a·s + e
	return &PublicKey{B: b, A: a}
}

// genSwitchingKey builds a key that moves c·src to the canonical secret s:
// for each digit i, B_i = -A_i·s + e_i + p·W_i·src where W_i is the RNS
// reconstruction constant (W_i ≡ δ_ij mod q_j, so p·W_i contributes p mod
// q_i on row i and nothing elsewhere).
func (kg *KeyGenerator) genSwitchingKey(src *ring.Poly, sk *SecretKey) *SwitchingKey {
	r := kg.params.Ring()
	l := kg.params.L
	full := r.MaxLevel() // l q-primes + special
	swk := &SwitchingKey{
		B: make([]*ring.Poly, l),
		A: make([]*ring.Poly, l),
	}
	for i := 0; i < l; i++ {
		a := kg.sampler.Uniform(full)
		e := kg.sampler.Error(full)
		r.NTT(a)
		r.NTT(e)
		b := r.NewPoly(full)
		r.MulCoeffs(b, a, sk.Value)
		r.Neg(b, b)
		r.Add(b, b, e)
		// Add p·W_i·src: only row i carries the message, scaled by
		// p mod q_i (a scalar, applied in the NTT domain).
		pModQi := r.Mods[i].Reduce(kg.params.Special)
		row := make([]uint64, r.N)
		r.Mods[i].ScalarMulVec(row, src.Coeffs[i], pModQi)
		r.Mods[i].AddVec(b.Coeffs[i], b.Coeffs[i], row)
		// Store the digit rows in Montgomery form: the keyswitch MACs
		// then use REDC (MulMontAddLazyVec), and because REDC cancels the
		// 2^64 factor exactly, ciphertext results — and their digest pins
		// — are bit-identical to the Barrett formulation. The residues
		// stay canonical (< q), so serialization is unaffected.
		r.MForm(b, b)
		r.MForm(a, a)
		swk.B[i] = b
		swk.A[i] = a
	}
	return swk
}

// GenRelinearizationKey produces the key for s² -> s.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *RelinearizationKey {
	r := kg.params.Ring()
	s2 := r.NewPoly(r.MaxLevel())
	r.MulCoeffs(s2, sk.Value, sk.Value)
	return &RelinearizationKey{*kg.genSwitchingKey(s2, sk)}
}

// GenRotationKeys produces Galois keys for the given slot rotations
// (positive = left rotation) and optionally conjugation.
func (kg *KeyGenerator) GenRotationKeys(sk *SecretKey, rotations []int, conjugate bool) *RotationKeys {
	rk := &RotationKeys{Keys: map[uint64]*SwitchingKey{}}
	for _, k := range rotations {
		g := kg.params.GaloisElementForRotation(k)
		if _, ok := rk.Keys[g]; ok {
			continue
		}
		rk.Keys[g] = kg.genGaloisKey(sk, g)
	}
	if conjugate {
		g := kg.params.GaloisElementConjugate()
		rk.Keys[g] = kg.genGaloisKey(sk, g)
	}
	return rk
}

// genGaloisKey builds the switching key for σ_g(s) -> s.
func (kg *KeyGenerator) genGaloisKey(sk *SecretKey, g uint64) *SwitchingKey {
	r := kg.params.Ring()
	// σ_g acts on coefficient representation.
	sCoeff := sk.Value.Copy()
	r.INTT(sCoeff)
	sG := r.NewPoly(r.MaxLevel())
	r.Automorphism(sG, sCoeff, g)
	r.NTT(sG)
	return kg.genSwitchingKey(sG, sk)
}

// GaloisElementForRotation maps a slot rotation amount (positive = left) to
// its automorphism exponent 5^k mod 2N.
func (p Parameters) GaloisElementForRotation(k int) uint64 {
	slots := p.Slots()
	k = ((k % slots) + slots) % slots
	m := uint64(2 * p.N())
	g := uint64(1)
	for i := 0; i < k; i++ {
		g = (g * 5) % m
	}
	return g
}

// GaloisElementConjugate returns the exponent of complex conjugation, 2N-1.
func (p Parameters) GaloisElementConjugate() uint64 {
	return uint64(2*p.N() - 1)
}

// truncate returns a view of the first k rows of a poly.
func truncate(p *ring.Poly, k int) *ring.Poly {
	if p.K() < k {
		panic(fmt.Sprintf("ckks: cannot truncate %d rows to %d", p.K(), k))
	}
	return &ring.Poly{Coeffs: p.Coeffs[:k]}
}
