package ckks

import (
	"fmt"
	"math"
)

// Analytic noise estimation. CKKS is approximate: every operation adds a
// bounded error to the slot values. The estimator propagates a high-
// probability error bound through an operation chain so callers can decide
// — before spending compute or provisioning hardware — whether a network's
// depth survives a parameter set. TestNoiseEstimateSound checks the bound
// dominates measured error across op chains while staying within a few
// orders of magnitude of it.

// NoiseEstimate tracks a ciphertext's error bound in slot-value units,
// together with the value/scale bookkeeping the propagation rules need.
type NoiseEstimate struct {
	// Err bounds the absolute slot error.
	Err float64
	// MaxVal bounds the slot magnitude (message bound).
	MaxVal float64
	// Scale is the CKKS scale.
	Scale float64
	// Level is the remaining prime count.
	Level int
}

// NoiseModel derives per-op error terms from a parameter set.
type NoiseModel struct {
	params Parameters
	sqrtN  float64
}

// safety widens every error term: the canonical embedding concentrates
// coefficient noise unevenly across slots, so the per-slot tail exceeds the
// RMS by a small factor. Eight standard-ish deviations keeps the bound a
// bound (TestNoiseEstimateSound) without making it useless.
const safety = 8.0

// NewNoiseModel builds an estimator for the parameters.
func NewNoiseModel(params Parameters) *NoiseModel {
	return &NoiseModel{params: params, sqrtN: math.Sqrt(float64(params.N()))}
}

// encodeErr is the slot-domain rounding error of encoding at the scale:
// coefficient rounding of ±0.5 diffuses across sqrt(N) basis directions.
func (m *NoiseModel) encodeErr(scale float64) float64 {
	return safety * 0.5 * m.sqrtN / scale
}

// freshErr is the slot-domain error of a fresh encryption: RLWE noise of
// width σ≈3.2 through the public-key terms (≈ σ·sqrt(2N/3)·(sqrtN)).
func (m *NoiseModel) freshErr(scale float64) float64 {
	const sigma = 3.24
	coeff := sigma * math.Sqrt(2*float64(m.params.N())/3)
	return safety * coeff * m.sqrtN / scale
}

// keySwitchErr is the slot error added by one keyswitch (digit
// decomposition with a special modulus): Σ_i |d_i|·e_i / p, with |d_i| < q.
func (m *NoiseModel) keySwitchErr(level int, scale float64) float64 {
	const sigma = 3.24
	q := math.Exp2(float64(m.params.QBits))
	p := float64(m.params.Special)
	coeff := float64(level) * q * sigma * m.sqrtN / p
	return safety * coeff * m.sqrtN / scale
}

// rescaleErr is the rounding error of dropping one prime.
func (m *NoiseModel) rescaleErr(newScale float64) float64 {
	return safety * 0.5 * m.sqrtN / newScale
}

// Fresh returns the estimate for a newly encrypted vector with |v| ≤ maxVal.
func (m *NoiseModel) Fresh(maxVal float64, level int) NoiseEstimate {
	s := m.params.Scale
	return NoiseEstimate{
		Err:    m.encodeErr(s) + m.freshErr(s),
		MaxVal: maxVal,
		Scale:  s,
		Level:  level,
	}
}

// Add propagates CCadd/PCadd.
func (m *NoiseModel) Add(a, b NoiseEstimate) NoiseEstimate {
	level := a.Level
	if b.Level < level {
		level = b.Level
	}
	return NoiseEstimate{
		Err:    a.Err + b.Err,
		MaxVal: a.MaxVal + b.MaxVal,
		Scale:  a.Scale,
		Level:  level,
	}
}

// MulPlain propagates PCmult by a plaintext with |w| ≤ wMax.
func (m *NoiseModel) MulPlain(a NoiseEstimate, wMax float64) NoiseEstimate {
	// Product error: e·w + v·εw + e·εw; the plaintext encodes at the
	// parameter scale.
	ew := m.encodeErr(m.params.Scale)
	return NoiseEstimate{
		Err:    a.Err*wMax + a.MaxVal*ew + a.Err*ew,
		MaxVal: a.MaxVal * wMax,
		Scale:  a.Scale * m.params.Scale,
		Level:  a.Level,
	}
}

// Square propagates CCmult(x, x) with relinearization.
func (m *NoiseModel) Square(a NoiseEstimate) NoiseEstimate {
	return NoiseEstimate{
		Err:    2*a.MaxVal*a.Err + a.Err*a.Err + m.keySwitchErr(a.Level, a.Scale*a.Scale),
		MaxVal: a.MaxVal * a.MaxVal,
		Scale:  a.Scale * a.Scale,
		Level:  a.Level,
	}
}

// Rescale propagates the level drop.
func (m *NoiseModel) Rescale(a NoiseEstimate) NoiseEstimate {
	q := math.Exp2(float64(m.params.QBits))
	newScale := a.Scale / q
	return NoiseEstimate{
		Err:    a.Err + m.rescaleErr(newScale),
		MaxVal: a.MaxVal,
		Scale:  newScale,
		Level:  a.Level - 1,
	}
}

// Rotate propagates a slot rotation (one keyswitch).
func (m *NoiseModel) Rotate(a NoiseEstimate) NoiseEstimate {
	return NoiseEstimate{
		Err:    a.Err + m.keySwitchErr(a.Level, a.Scale),
		MaxVal: a.MaxVal,
		Scale:  a.Scale,
		Level:  a.Level,
	}
}

// CapacityOK reports whether the message still fits the remaining modulus:
// maxVal·scale must stay below Q_level/2 with headroom.
func (m *NoiseModel) CapacityOK(a NoiseEstimate) bool {
	logBudget := float64(a.Level*m.params.QBits) - 1
	need := math.Log2(a.MaxVal+a.Err) + math.Log2(a.Scale)
	return need < logBudget
}

// String renders the estimate.
func (e NoiseEstimate) String() string {
	return fmt.Sprintf("NoiseEstimate{err≤%.3g, |v|≤%.3g, level %d}", e.Err, e.MaxVal, e.Level)
}
