package ckks

import (
	"sync"
	"testing"
)

// TestPlaintextReuseContract pins the contract the serve-path weight
// cache (hecnn.CompiledNetwork) is built on: a Plaintext used as an
// evaluator operand is strictly read-only. One encoded plaintext, shared
// by many concurrent AddPlainNew/MulPlainNew calls at full and truncated
// levels, must (a) keep a bit-identical serialized digest and (b) produce
// result ciphertexts bit-identical to serial evaluation with a private
// copy of the same plaintext.
func TestPlaintextReuseContract(t *testing.T) {
	tc := newTestContext(t, nil)
	params := tc.params

	vals := make([]float64, params.Slots())
	for i := range vals {
		vals[i] = float64(i%7)/7 - 0.4
	}
	shared := tc.enc.Encode(vals, params.MaxLevel(), params.Scale)
	private := tc.enc.Encode(vals, params.MaxLevel(), params.Scale)
	if shared.Digest() != private.Digest() {
		t.Fatal("two encodings of the same vector differ; encoder not deterministic")
	}
	before := shared.Digest()

	// Ciphertexts at the top level and one below it: the truncated-level
	// path reads a sub-slice view of the plaintext poly, which is exactly
	// where an accidental in-place op would corrupt the shared value.
	in := make([]float64, params.Slots())
	for i := range in {
		in[i] = float64(i%5)/5 - 0.2
	}
	ctTop := tc.encryptVec(in, params.MaxLevel())
	ctLow := tc.encryptVec(in, params.MaxLevel()-1)

	wantMulTop := tc.eval.MulPlainNew(ctTop, private).Digest()
	wantAddTop := tc.eval.AddPlainNew(ctTop, private).Digest()
	wantMulLow := tc.eval.MulPlainNew(ctLow, private).Digest()
	wantAddLow := tc.eval.AddPlainNew(ctLow, private).Digest()

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan string, workers*4)
	check := func(what, got, want string) {
		if got != want {
			errs <- what + ": " + got + " != " + want
		}
	}
	// One evaluator per goroutine — evaluators carry mutable state (the
	// trace); only the plaintext operand is the shared object under test.
	// This is the serve-path shape: per-request evaluators, one cache.
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eval := NewEvaluator(params, nil, nil)
			check("PCmult@top", eval.MulPlainNew(ctTop, shared).Digest(), wantMulTop)
			check("PCadd@top", eval.AddPlainNew(ctTop, shared).Digest(), wantAddTop)
			check("PCmult@low", eval.MulPlainNew(ctLow, shared).Digest(), wantMulLow)
			check("PCadd@low", eval.AddPlainNew(ctLow, shared).Digest(), wantAddLow)
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatalf("shared-plaintext result diverged from private-copy serial result: %s", msg)
	}
	if after := shared.Digest(); after != before {
		t.Fatalf("plaintext mutated by evaluator use: digest %s → %s", before, after)
	}
}
