package ckks

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestCiphertextSerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(50))
	v := randVec(tc.params.Slots(), 5, rng)
	ct := tc.encryptVec(v, 3)

	var buf bytes.Buffer
	n, err := ct.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != ct.SerializedSize() || buf.Len() != ct.SerializedSize() {
		t.Fatalf("size mismatch: wrote %d, SerializedSize %d, buf %d", n, ct.SerializedSize(), buf.Len())
	}
	got, err := ReadCiphertext(&buf, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level() != ct.Level() || got.Degree() != ct.Degree() || got.Scale != ct.Scale {
		t.Fatal("metadata mismatch after roundtrip")
	}
	// The deserialized ciphertext must decrypt identically.
	requireClose(t, tc.enc.Decode(tc.decr.Decrypt(got))[:16], v[:16], 1e-4, "roundtrip decrypt")
}

func TestCiphertextSerializationSurvivesOps(t *testing.T) {
	tc := newTestContext(t, []int{1})
	rng := rand.New(rand.NewSource(51))
	v := randVec(tc.params.Slots(), 2, rng)
	ct := tc.encryptVec(v, 4)

	var buf bytes.Buffer
	if _, err := ct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCiphertext(&buf, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	rot := tc.eval.RotateNew(got, 1)
	dec := tc.decryptVec(rot)
	slots := tc.params.Slots()
	for i := 0; i < 16; i++ {
		want := v[(i+1)%slots]
		if diff := dec[i] - want; diff > 1e-2 || diff < -1e-2 {
			t.Fatalf("slot %d after deserialization+rotate: %g want %g", i, dec[i], want)
		}
	}
}

func TestPlaintextSerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(52))
	v := randVec(tc.params.Slots(), 3, rng)
	pt := tc.enc.Encode(v, 2, tc.params.Scale)

	var buf bytes.Buffer
	if _, err := pt.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlaintext(&buf, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scale != pt.Scale || got.IsNTT != pt.IsNTT {
		t.Fatal("plaintext metadata mismatch")
	}
	requireClose(t, tc.enc.Decode(got)[:16], v[:16], 1e-5, "plaintext roundtrip")
}

func TestPublicKeySerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	var buf bytes.Buffer
	if _, err := tc.pk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPublicKey(&buf, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	// Encrypting with the deserialized key must decrypt correctly.
	enc2 := NewEncryptor(tc.params, got, 777)
	rng := rand.New(rand.NewSource(53))
	v := randVec(tc.params.Slots(), 2, rng)
	ct := enc2.Encrypt(tc.enc.Encode(v, 3, tc.params.Scale))
	requireClose(t, tc.decryptVec(ct)[:16], v[:16], 1e-4, "pk roundtrip encrypt")
}

func TestSwitchingKeySerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t, []int{2})
	g := tc.params.GaloisElementForRotation(2)
	swk := tc.rtk.Keys[g]

	var buf bytes.Buffer
	if _, err := swk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSwitchingKey(&buf, tc.params)
	if err != nil {
		t.Fatal(err)
	}
	// Build an evaluator around the deserialized key and rotate with it.
	rtk2 := &RotationKeys{Keys: map[uint64]*SwitchingKey{g: got}}
	eval2 := NewEvaluator(tc.params, nil, rtk2)
	rng := rand.New(rand.NewSource(54))
	v := randVec(tc.params.Slots(), 2, rng)
	ct := tc.encryptVec(v, 3)
	rot := eval2.RotateNew(ct, 2)
	dec := tc.decryptVec(rot)
	slots := tc.params.Slots()
	for i := 0; i < 16; i++ {
		want := v[(i+2)%slots]
		if d := dec[i] - want; d > 1e-2 || d < -1e-2 {
			t.Fatalf("slot %d via deserialized Galois key: %g want %g", i, dec[i], want)
		}
	}
}

func TestDeserializationRejectsGarbage(t *testing.T) {
	tc := newTestContext(t, nil)
	// Wrong tag.
	if _, err := ReadCiphertext(bytes.NewReader(make([]byte, 64)), tc.params); err == nil {
		t.Fatal("zero bytes accepted as ciphertext")
	}
	// Truncated stream.
	ct := tc.encryptVec(randVec(8, 1, rand.New(rand.NewSource(55))), 2)
	raw, _ := ct.MarshalBinary()
	if _, err := ReadCiphertext(bytes.NewReader(raw[:len(raw)/2]), tc.params); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
	// Implausible degree.
	bad := append([]byte(nil), raw...)
	bad[1] = 200
	if _, err := ReadCiphertext(bytes.NewReader(bad), tc.params); err == nil {
		t.Fatal("degree-200 ciphertext accepted")
	}
	// Implausible scale.
	bad = append([]byte(nil), raw...)
	for i := 2; i < 10; i++ {
		bad[i] = 0xFF
	}
	if _, err := ReadCiphertext(bytes.NewReader(bad), tc.params); err == nil {
		t.Fatal("NaN scale accepted")
	}
}

// TestMalformedStreamsAreTyped: every structural rejection must wrap
// ErrMalformed (the MLaaS server keys its bad-request mapping off it) and
// the scale bound must reject values a correct peer can never produce,
// even when they are perfectly finite floats.
func TestMalformedStreamsAreTyped(t *testing.T) {
	tc := newTestContext(t, nil)
	ct := tc.encryptVec(randVec(8, 1, rand.New(rand.NewSource(56))), 2)
	raw, _ := ct.MarshalBinary()

	putScale := func(b []byte, s float64) {
		binary.LittleEndian.PutUint64(b[2:], math.Float64bits(s))
	}
	cases := map[string][]byte{}

	bad := append([]byte(nil), raw...)
	bad[0] = 0x00
	cases["wrong tag"] = bad

	bad = append([]byte(nil), raw...)
	bad[1] = 0
	cases["zero degree"] = bad

	bad = append([]byte(nil), raw...)
	putScale(bad, 0.5) // finite, positive, but below any rescaled scale
	cases["sub-unit scale"] = bad

	bad = append([]byte(nil), raw...)
	putScale(bad, math.Exp2(float64(4*tc.params.QBits)+1)) // finite but past the post-mul bound
	cases["oversized scale"] = bad

	for name, stream := range cases {
		if _, err := ReadCiphertext(bytes.NewReader(stream), tc.params); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}

	// Parts at different levels: a degree-2 header whose second poly sits
	// at a different level than the first must be rejected mid-stream.
	other := tc.encryptVec(randVec(8, 1, rand.New(rand.NewSource(57))), 4)
	var mixed bytes.Buffer
	hdr := [10]byte{tagCiphertext, 2}
	binary.LittleEndian.PutUint64(hdr[2:], math.Float64bits(ct.Scale))
	mixed.Write(hdr[:])
	if _, err := ct.Value[0].WriteTo(&mixed); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Value[0].WriteTo(&mixed); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCiphertext(&mixed, tc.params); !errors.Is(err, ErrMalformed) {
		t.Fatalf("inconsistent part levels: want ErrMalformed, got %v", err)
	}
}

// TestCiphertextSizeMatchesParams verifies the advertised ciphertext sizes
// (the basis of the paper's storage-overhead statements).
func TestCiphertextSizeMatchesParams(t *testing.T) {
	tc := newTestContext(t, nil)
	ct := tc.encryptVec([]float64{1}, 3)
	want := tc.params.CiphertextBytes(3) + 10 + 2*8 // payload + header + 2 poly headers
	if got := ct.SerializedSize(); got != want {
		t.Fatalf("serialized size %d want %d", got, want)
	}
}

// TestKeySizeAccounting: the analytic evaluation-key size matches the
// actual serialized sizes.
func TestKeySizeAccounting(t *testing.T) {
	tc := newTestContext(t, []int{1, 2})
	var buf bytes.Buffer
	if _, err := tc.rlk.SwitchingKey.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != tc.rlk.SwitchingKey.SerializedSize() {
		t.Fatalf("rlk size %d != advertised %d", buf.Len(), tc.rlk.SwitchingKey.SerializedSize())
	}
	total := int64(tc.rlk.SwitchingKey.SerializedSize() + tc.rtk.SerializedSize())
	want := EvaluationKeyBytes(tc.params, len(tc.rtk.Keys))
	if total != want {
		t.Fatalf("evaluation key bytes %d != analytic %d", total, want)
	}
	var pkBuf bytes.Buffer
	tc.pk.WriteTo(&pkBuf) //nolint:errcheck
	if pkBuf.Len() != tc.pk.SerializedSize() {
		t.Fatal("pk size mismatch")
	}
}
