package ckks

import (
	"fmt"

	"fxhenn/internal/ring"
)

// Hoisted rotations (Halevi-Shoup): the expensive part of a rotation is the
// keyswitch decomposition of c1 — one INTT plus a forward NTT per (digit,
// modulus) pair. When the same ciphertext is rotated by many amounts (the
// rotate-and-sum ladders of every KS layer), the decomposition can be
// computed once and only permuted per rotation, because the Galois map is
// an index permutation in the NTT domain. This is the classic optimization
// the paper leaves on the table; it is exposed here as a library extension
// and quantified by BenchmarkHoistedRotations.

// HoistedDecomposition is the reusable NTT-domain keyswitch decomposition
// of a ciphertext's c1 part over the extended basis (q_0..q_{k-1}, p).
type HoistedDecomposition struct {
	level   int
	digitsQ [][][]uint64 // [digit][targetRow][coeff]
	digitsP [][]uint64   // [digit][coeff]
}

// DecomposeForRotation computes the hoisted decomposition of ct (degree 1).
func (ev *Evaluator) DecomposeForRotation(ct *Ciphertext) *HoistedDecomposition {
	if ct.Degree() != 1 {
		panic("ckks: hoisting requires a degree-1 ciphertext")
	}
	r := ev.params.Ring()
	k := ct.Level()
	sp := ev.spIdx

	cc := ct.Value[1].Copy()
	r.INTT(cc)

	hd := &HoistedDecomposition{
		level:   k,
		digitsQ: make([][][]uint64, k),
		digitsP: make([][]uint64, k),
	}
	// Each digit's extended-basis expansion writes only its own slices.
	r.Pool().Do(k, func(i int) {
		d := cc.Coeffs[i]
		hd.digitsQ[i] = make([][]uint64, k)
		for j := 0; j < k; j++ {
			row := make([]uint64, r.N)
			if j == i {
				copy(row, d)
			} else {
				r.Mods[j].ReduceVec(row, d)
			}
			r.Tables[j].Forward(row)
			hd.digitsQ[i][j] = row
		}
		prow := make([]uint64, r.N)
		r.Mods[sp].ReduceVec(prow, d)
		r.Tables[sp].Forward(prow)
		hd.digitsP[i] = prow
	})
	return hd
}

// RotateHoisted rotates ct by every amount in ks using one shared
// decomposition, returning a map from rotation amount to result. Rotation
// by zero returns a copy.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, ks []int) map[int]*Ciphertext {
	if ev.rtk == nil {
		panic("ckks: no rotation keys")
	}
	hd := ev.DecomposeForRotation(ct)
	out := make(map[int]*Ciphertext, len(ks))
	for _, k := range ks {
		if _, done := out[k]; done {
			continue
		}
		if k == 0 {
			out[0] = ct.Copy()
			continue
		}
		out[k] = ev.rotateWithDecomposition(ct, hd, k)
	}
	return out
}

// rotateWithDecomposition applies one rotation using the hoisted digits.
func (ev *Evaluator) rotateWithDecomposition(ct *Ciphertext, hd *HoistedDecomposition, k int) *Ciphertext {
	g := ev.params.GaloisElementForRotation(k)
	swk, ok := ev.rtk.Keys[g]
	if !ok {
		panic(fmt.Sprintf("ckks: missing Galois key for rotation %d", k))
	}
	r := ev.params.Ring()
	level := hd.level
	n := r.N
	sp := ev.spIdx
	spMod := r.Mods[sp]
	perm := r.NTTAutomorphismIndex(g)

	u0 := r.NewPoly(level)
	u1 := r.NewPoly(level)
	u0p := make([]uint64, n)
	u1p := make([]uint64, n)

	// Target-row-outer, same shape as keySwitchCore: the level+1 extended
	// rows are independent, and digits accumulate in ascending order within
	// each row so the parallel result is bit-exact with the serial one.
	// Same lazy Montgomery MAC discipline as keySwitchCore: key rows are in
	// Montgomery form, accumulators collect unreduced [0, 2q) terms with a
	// guard against uint64 overflow, and one ReduceVec per row restores
	// canonical residues.
	r.Pool().Do(level+1, func(j int) {
		tmp := make([]uint64, n)
		if j == level { // special-prime row
			maxLazy := spMod.MaxLazyAdds()
			terms := 0
			for i := 0; i < level; i++ {
				ring.PermuteVec(tmp, hd.digitsP[i], perm)
				terms = lazyMACGuard(spMod, u0p, u1p, terms, maxLazy)
				spMod.MulMontAddLazyVec(u0p, tmp, swk.B[i].Coeffs[sp])
				spMod.MulMontAddLazyVec(u1p, tmp, swk.A[i].Coeffs[sp])
			}
			spMod.ReduceVec(u0p, u0p)
			spMod.ReduceVec(u1p, u1p)
			return
		}
		mj := r.Mods[j]
		maxLazy := mj.MaxLazyAdds()
		terms := 0
		for i := 0; i < level; i++ {
			ring.PermuteVec(tmp, hd.digitsQ[i][j], perm)
			terms = lazyMACGuard(mj, u0.Coeffs[j], u1.Coeffs[j], terms, maxLazy)
			mj.MulMontAddLazyVec(u0.Coeffs[j], tmp, swk.B[i].Coeffs[j])
			mj.MulMontAddLazyVec(u1.Coeffs[j], tmp, swk.A[i].Coeffs[j])
		}
		mj.ReduceVec(u0.Coeffs[j], u0.Coeffs[j])
		mj.ReduceVec(u1.Coeffs[j], u1.Coeffs[j])
	})
	ev.modDown(u0, u0p)
	ev.modDown(u1, u1p)

	// σ_g(c0) directly in the NTT domain.
	p0 := r.NewPoly(level)
	r.PermuteNTT(p0, ct.Value[0], perm)

	res := NewCiphertext(ev.params, 2, level)
	res.Scale = ct.Scale
	r.Add(res.Value[0], p0, u0)
	res.Value[1] = u1
	ev.record(OpRotate, level)
	return res
}
