package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(n int, amp float64, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = amp * (2*rng.Float64() - 1)
	}
	return v
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	params := paramsTest()
	enc := NewEncoder(params)
	rng := rand.New(rand.NewSource(1))
	for _, level := range []int{2, 3, params.L} {
		v := randVec(params.Slots(), 10, rng)
		pt := enc.Encode(v, level, params.Scale)
		if pt.Level() != level {
			t.Fatalf("encoded level %d want %d", pt.Level(), level)
		}
		got := enc.Decode(pt)
		if d := maxAbsDiff(v, got[:len(v)]); d > 1e-5 {
			t.Fatalf("level %d: roundtrip error %g", level, d)
		}
	}
	// At level 1 the message·scale must fit a single 30-bit prime, so only
	// small amplitudes survive — the reason the HE-CNN never descends to
	// level 1.
	v := randVec(params.Slots(), 0.1, rng)
	pt := enc.Encode(v, 1, params.Scale)
	got := enc.Decode(pt)
	if d := maxAbsDiff(v, got[:len(v)]); d > 1e-5 {
		t.Fatalf("level 1: roundtrip error %g", d)
	}
}

func TestEncodeConstMatchesBroadcastEncode(t *testing.T) {
	params := paramsTest()
	enc := NewEncoder(params)
	broadcast := func(c float64) []float64 {
		v := make([]float64, params.Slots())
		for i := range v {
			v[i] = c
		}
		return v
	}
	for _, c := range []float64{0, 1, -1, 0.37, -2.25, 117.5} {
		for _, level := range []int{2, params.L} {
			fast := enc.EncodeConst(c, level, params.Scale)
			if fast.Level() != level || !fast.IsNTT {
				t.Fatalf("EncodeConst(%g) level=%d IsNTT=%v", c, fast.Level(), fast.IsNTT)
			}
			got := enc.Decode(fast)
			if d := maxAbsDiff(broadcast(c), got); d > 1e-5 {
				t.Fatalf("EncodeConst(%g) level %d: decode error %g", c, level, d)
			}
			// The fast path must agree with the FFT path slot-for-slot to
			// encoding precision — batched evaluation mixes the two.
			slow := enc.Decode(enc.Encode(broadcast(c), level, params.Scale))
			if d := maxAbsDiff(slow, got); d > 1e-5 {
				t.Fatalf("EncodeConst(%g) level %d: diverges from Encode by %g", c, level, d)
			}
		}
	}
	// Arbitrary (non-default) scales, as PCadd uses: the running ciphertext
	// scale is a product of rescale corrections, not a power of two.
	fast := enc.EncodeConst(0.81, 3, params.Scale*1.0375)
	got := enc.Decode(fast)
	if d := maxAbsDiff(broadcast(0.81), got); d > 1e-5 {
		t.Fatalf("EncodeConst at odd scale: decode error %g", d)
	}
	// Magnitudes beyond a word take the big.Int path.
	huge := enc.EncodeConst(math.Exp2(40), params.L, params.Scale)
	gotHuge := enc.Decode(huge)
	if d := math.Abs(gotHuge[0]-math.Exp2(40)) / math.Exp2(40); d > 1e-9 {
		t.Fatalf("EncodeConst big path: relative error %g", d)
	}
}

func TestEncodeConstValidation(t *testing.T) {
	enc := NewEncoder(paramsTest())
	for _, level := range []int{0, -1, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EncodeConst level %d did not panic", level)
				}
			}()
			enc.EncodeConst(1, level, enc.params.Scale)
		}()
	}
}

func TestEncodeDecodeComplex(t *testing.T) {
	params := paramsTest()
	enc := NewEncoder(params)
	rng := rand.New(rand.NewSource(2))
	v := make([]complex128, params.Slots())
	for i := range v {
		v[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	pt := enc.EncodeComplex(v, 2, params.Scale)
	got := enc.DecodeComplex(pt)
	for i := range v {
		if cmplx.Abs(v[i]-got[i]) > 1e-5 {
			t.Fatalf("slot %d: %v != %v", i, got[i], v[i])
		}
	}
}

func TestEncodeShortVectorZeroPads(t *testing.T) {
	params := paramsTest()
	enc := NewEncoder(params)
	v := []float64{1.5, -2.25, 3.125}
	pt := enc.Encode(v, 2, params.Scale)
	got := enc.Decode(pt)
	if d := maxAbsDiff(v, got[:3]); d > 1e-6 {
		t.Fatalf("prefix error %g", d)
	}
	for i := 3; i < params.Slots(); i++ {
		if math.Abs(got[i]) > 1e-6 {
			t.Fatalf("slot %d not zero: %g", i, got[i])
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	params := paramsTest()
	enc := NewEncoder(params)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversized vector did not panic")
			}
		}()
		enc.Encode(make([]float64, params.Slots()+1), 2, params.Scale)
	}()
	for _, level := range []int{0, params.L + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("level %d did not panic", level)
				}
			}()
			enc.Encode([]float64{1}, level, params.Scale)
		}()
	}
}

// TestEncodingIsAdditivelyHomomorphic: Encode(a) + Encode(b) decodes to a+b.
func TestEncodingIsAdditivelyHomomorphic(t *testing.T) {
	params := paramsTest()
	enc := NewEncoder(params)
	r := params.Ring()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randVec(params.Slots(), 5, rng)
		b := randVec(params.Slots(), 5, rng)
		pa := enc.Encode(a, 2, params.Scale)
		pb := enc.Encode(b, 2, params.Scale)
		r.Add(pa.Value, pa.Value, pb.Value)
		got := enc.Decode(pa)
		for i := range a {
			if math.Abs(got[i]-(a[i]+b[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodingIsMultiplicativelyHomomorphic: the negacyclic product of two
// encodings decodes to the slotwise product at scale².
func TestEncodingIsMultiplicativelyHomomorphic(t *testing.T) {
	params := paramsTest()
	enc := NewEncoder(params)
	r := params.Ring()
	rng := rand.New(rand.NewSource(3))
	a := randVec(params.Slots(), 4, rng)
	b := randVec(params.Slots(), 4, rng)
	pa := enc.Encode(a, params.L, params.Scale)
	pb := enc.Encode(b, params.L, params.Scale)
	r.MulCoeffs(pa.Value, pa.Value, pb.Value) // both NTT domain
	pa.Scale *= pb.Scale
	got := enc.Decode(pa)
	for i := range a {
		if math.Abs(got[i]-a[i]*b[i]) > 1e-4 {
			t.Fatalf("slot %d: %g != %g", i, got[i], a[i]*b[i])
		}
	}
}

// TestAutomorphismRotatesSlots pins down the slot-rotation convention:
// applying X -> X^(5^k) to an encoding rotates the slot vector left by k.
func TestAutomorphismRotatesSlots(t *testing.T) {
	params := paramsTest()
	enc := NewEncoder(params)
	r := params.Ring()
	rng := rand.New(rand.NewSource(4))
	v := randVec(params.Slots(), 3, rng)
	for _, k := range []int{1, 2, 7, params.Slots() - 1} {
		pt := enc.Encode(v, 2, params.Scale)
		coeff := pt.Value.Copy()
		r.INTT(coeff)
		rot := r.NewPoly(2)
		r.Automorphism(rot, coeff, params.GaloisElementForRotation(k))
		got := enc.Decode(&Plaintext{Value: rot, Scale: pt.Scale, IsNTT: false})
		for i := 0; i < params.Slots(); i++ {
			want := v[(i+k)%params.Slots()]
			if math.Abs(got[i]-want) > 1e-5 {
				t.Fatalf("k=%d slot %d: got %g want %g", k, i, got[i], want)
			}
		}
	}
}

// TestConjugationConjugatesSlots: X -> X^(2N-1) conjugates every slot.
func TestConjugationConjugatesSlots(t *testing.T) {
	params := paramsTest()
	enc := NewEncoder(params)
	r := params.Ring()
	rng := rand.New(rand.NewSource(5))
	v := make([]complex128, params.Slots())
	for i := range v {
		v[i] = complex(rng.Float64(), rng.Float64())
	}
	pt := enc.EncodeComplex(v, 2, params.Scale)
	coeff := pt.Value.Copy()
	r.INTT(coeff)
	conj := r.NewPoly(2)
	r.Automorphism(conj, coeff, params.GaloisElementConjugate())
	got := enc.DecodeComplex(&Plaintext{Value: conj, Scale: pt.Scale, IsNTT: false})
	for i := range v {
		if cmplx.Abs(got[i]-cmplx.Conj(v[i])) > 1e-5 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], cmplx.Conj(v[i]))
		}
	}
}

func TestGaloisElements(t *testing.T) {
	params := paramsTest()
	if g := params.GaloisElementForRotation(0); g != 1 {
		t.Fatalf("rotation 0 element = %d, want 1", g)
	}
	// Rotation by slots is the identity.
	if g := params.GaloisElementForRotation(params.Slots()); g != 1 {
		t.Fatalf("full rotation element = %d, want 1", g)
	}
	// Negative rotations normalize.
	if params.GaloisElementForRotation(-1) != params.GaloisElementForRotation(params.Slots()-1) {
		t.Fatal("negative rotation not normalized")
	}
	if params.GaloisElementConjugate() != uint64(2*params.N()-1) {
		t.Fatal("conjugate element wrong")
	}
}

func TestParamsAccessors(t *testing.T) {
	p := paramsTest()
	if p.N() != 256 || p.Slots() != 128 || p.MaxLevel() != 5 {
		t.Fatalf("unexpected geometry: N=%d slots=%d L=%d", p.N(), p.Slots(), p.MaxLevel())
	}
	if p.LogQ() != 150 {
		t.Fatalf("LogQ=%d want 150", p.LogQ())
	}
	if p.CiphertextBytes(3) != 2*3*256*8 {
		t.Fatal("CiphertextBytes wrong")
	}
	if p.PlaintextBytes(2) != 2*256*8 {
		t.Fatal("PlaintextBytes wrong")
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
	if len(p.Moduli) != 5 {
		t.Fatal("moduli count")
	}
}

func TestParamsValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("L=1 did not panic")
			}
		}()
		NewParameters(8, 30, 1, 45)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pBits <= qBits did not panic")
			}
		}()
		NewParameters(8, 30, 3, 30)
	}()
}

func TestPaperParameterPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("large parameter generation")
	}
	m := ParamsMNIST()
	if m.N() != 8192 || m.L != 7 || m.QBits != 30 {
		t.Fatalf("MNIST params wrong: %v", m)
	}
	if m.LogQ() != 210 {
		t.Fatalf("MNIST logQ = %d, want 210 (Table VII)", m.LogQ())
	}
	c := ParamsCIFAR10()
	if c.N() != 16384 || c.L != 7 || c.QBits != 36 {
		t.Fatalf("CIFAR10 params wrong: %v", c)
	}
	if c.LogQ() != 252 {
		t.Fatalf("CIFAR10 logQ = %d, want 252 (Table VII)", c.LogQ())
	}
}
