package ckks

import (
	"fmt"

	"fxhenn/internal/ring"
)

// Ciphertext is an RLWE ciphertext (c0, c1) — or (c0, c1, c2) transiently
// after CCmult before relinearization — kept in the NTT domain. Its Level is
// the number of active q_i primes; Rescale consumes one level, exactly the
// RNS-polynomial-count semantics the paper's inter-layer module reuse
// (§V-C) is built around.
type Ciphertext struct {
	Value []*ring.Poly
	Scale float64
}

// NewCiphertext allocates a zero ciphertext of the given degree+1 parts at
// the given level.
func NewCiphertext(params Parameters, parts, level int) *Ciphertext {
	if level < 1 || level > params.L {
		panic(fmt.Sprintf("ckks: ciphertext level %d out of range [1,%d]", level, params.L))
	}
	ct := &Ciphertext{Scale: params.Scale}
	r := params.Ring()
	for i := 0; i < parts; i++ {
		ct.Value = append(ct.Value, r.NewPoly(level))
	}
	return ct
}

// Level returns the number of active primes.
func (ct *Ciphertext) Level() int { return ct.Value[0].K() }

// Degree returns the ciphertext degree (1 for a normal (c0,c1) pair).
func (ct *Ciphertext) Degree() int { return len(ct.Value) - 1 }

// Copy deep-copies the ciphertext.
func (ct *Ciphertext) Copy() *Ciphertext {
	out := &Ciphertext{Scale: ct.Scale}
	for _, p := range ct.Value {
		out.Value = append(out.Value, p.Copy())
	}
	return out
}

// DropLevel removes the last n primes from every part (modulus reduction
// without rounding; the scale is unchanged).
func (ct *Ciphertext) DropLevel(n int) {
	for _, p := range ct.Value {
		p.DropLast(n)
	}
}

// Encryptor encrypts plaintexts under a public key.
type Encryptor struct {
	params  Parameters
	pk      *PublicKey
	sampler *ring.Sampler
}

// NewEncryptor creates a deterministic encryptor.
func NewEncryptor(params Parameters, pk *PublicKey, seed int64) *Encryptor {
	return &Encryptor{params: params, pk: pk, sampler: ring.NewSampler(params.Ring(), seed)}
}

// Encrypt produces a fresh ciphertext of pt at pt's level:
// (c0, c1) = (B·u + e0 + m, A·u + e1).
func (enc *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	if !pt.IsNTT {
		panic("ckks: Encrypt requires an NTT-domain plaintext")
	}
	r := enc.params.Ring()
	level := pt.Level()

	u := enc.sampler.Ternary(level)
	e0 := enc.sampler.Error(level)
	e1 := enc.sampler.Error(level)
	r.NTT(u)
	r.NTT(e0)
	r.NTT(e1)

	ct := NewCiphertext(enc.params, 2, level)
	ct.Scale = pt.Scale
	b := truncate(enc.pk.B, level)
	a := truncate(enc.pk.A, level)
	r.MulCoeffs(ct.Value[0], b, u)
	r.Add(ct.Value[0], ct.Value[0], e0)
	r.Add(ct.Value[0], ct.Value[0], pt.Value)
	r.MulCoeffs(ct.Value[1], a, u)
	r.Add(ct.Value[1], ct.Value[1], e1)
	return ct
}

// Decryptor recovers plaintexts with the secret key.
type Decryptor struct {
	params Parameters
	sk     *SecretKey
}

// NewDecryptor creates a decryptor.
func NewDecryptor(params Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// Decrypt computes m = Σ_i c_i · s^i, returning an NTT-domain plaintext at
// the ciphertext's level and scale.
func (dec *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	r := dec.params.Ring()
	level := ct.Level()
	s := truncate(dec.sk.Value, level)

	acc := ct.Value[len(ct.Value)-1].Copy()
	for i := len(ct.Value) - 2; i >= 0; i-- {
		r.MulCoeffs(acc, acc, s)
		r.Add(acc, acc, ct.Value[i])
	}
	return &Plaintext{Value: acc, Scale: ct.Scale, IsNTT: true}
}
