package ckks

// Op enumerates the HE operations of §II-A. Relinearize and Rotate are
// distinct here but share the KeySwitch hardware module (OP5) in the
// accelerator model, matching the paper's "we use KeySwitch to denote a
// Relinearize or Rotate operation".
type Op int

const (
	OpCCadd Op = iota
	OpPCadd
	OpPCmult
	OpCCmult
	OpRescale
	OpRelin
	OpRotate
	// NumOps is the number of distinct operations (array-sizing constant
	// for per-op accounting).
	NumOps
)

// String returns the paper's name for the operation.
func (op Op) String() string {
	switch op {
	case OpCCadd:
		return "CCadd"
	case OpPCadd:
		return "PCadd"
	case OpPCmult:
		return "PCmult"
	case OpCCmult:
		return "CCmult"
	case OpRescale:
		return "Rescale"
	case OpRelin:
		return "Relinearize"
	case OpRotate:
		return "Rotate"
	default:
		return "unknown"
	}
}

// IsKeySwitch reports whether the operation uses the KeySwitch module.
func (op Op) IsKeySwitch() bool { return op == OpRelin || op == OpRotate }

// Event is one recorded HE operation with the ciphertext level it ran at
// (the level determines how many RNS polynomials the hardware module
// processes, hence its latency).
type Event struct {
	Op    Op
	Level int
}

// Trace accumulates the HE operations executed by an Evaluator.
type Trace struct {
	Events []Event
}

// Record appends an event.
func (t *Trace) Record(op Op, level int) {
	t.Events = append(t.Events, Event{Op: op, Level: level})
}

// Reset clears the trace.
func (t *Trace) Reset() { t.Events = t.Events[:0] }

// Count returns the number of events of the given op.
func (t *Trace) Count(op Op) int {
	n := 0
	for _, e := range t.Events {
		if e.Op == op {
			n++
		}
	}
	return n
}

// Total returns the total HOP count.
func (t *Trace) Total() int { return len(t.Events) }

// KeySwitchCount returns the number of KeySwitch operations (the "KS"
// column of Table VII).
func (t *Trace) KeySwitchCount() int {
	n := 0
	for _, e := range t.Events {
		if e.Op.IsKeySwitch() {
			n++
		}
	}
	return n
}
