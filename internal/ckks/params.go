// Package ckks implements the RNS-CKKS approximate homomorphic encryption
// scheme (Cheon-Kim-Kim-Song with the full-RNS variant of Cheon-Han-Kim-
// Kim-Song) that FxHENN's HE operation modules compute: PCadd, PCmult,
// CCadd, CCmult, Rescale, Relinearize and Rotate (§II-A of the paper).
// KeySwitch follows the RNS digit decomposition over the extended basis
// (q_0..q_{L-1}, p): Σ_i [c]_{q_i} ⊗ (B_i, A_i) followed by division by the
// special prime p — the paper's OP5, its dominant pipeline stage.
//
// The implementation is software-only and deterministic; it is the
// functional ground truth against which the simulated FPGA accelerator's
// schedules are validated.
//
// Parallelism contract: an Evaluator is safe for concurrent use from
// multiple goroutines if and only if its Trace field is nil (the trace
// recorder is intentionally unsynchronized). When a parallel.Pool is
// attached to the parameters' ring (Parameters.AttachPool), key-switching
// fans its k+1 extended-basis target rows out as independent work items,
// hoisted decompositions expand their digits concurrently, and every ring
// operation inherits limb parallelism — all bit-exact with serial
// execution, which TestParallelMatchesSerialDigests pins. Encoder,
// Encryptor and Decryptor are likewise safe for concurrent use on distinct
// outputs.
package ckks

import (
	"fmt"
	"math"

	"fxhenn/internal/parallel"
	"fxhenn/internal/primes"
	"fxhenn/internal/ring"
)

// Parameters fixes a CKKS instantiation: ring degree, RNS modulus chain and
// default encoding scale. The special (keyswitching) modulus is carried as
// the last prime of the underlying ring and never appears in ciphertexts.
type Parameters struct {
	LogN  int     // log2 of the ring degree
	L     int     // number of ciphertext moduli q_i (the maximum level)
	QBits int     // bit size of each q_i
	PBits int     // bit size of the special modulus
	Scale float64 // default encoding scale Δ

	Moduli  []uint64 // q_0 .. q_{L-1}
	Special uint64   // keyswitching modulus p

	ring *ring.Ring // basis q_0..q_{L-1}, p (p last)
}

// NewParameters generates an instantiation with L primes of qBits bits plus
// one special prime of pBits bits, all NTT-friendly for degree 2^logN.
// The default scale is 2^qBits, the paper's choice of matching scale and
// modulus word size.
func NewParameters(logN, qBits, l, pBits int) Parameters {
	if l < 2 {
		panic("ckks: need at least 2 ciphertext moduli")
	}
	if pBits <= qBits {
		panic("ckks: special modulus must be larger than the q_i for keyswitching noise control")
	}
	qs := primes.GenerateNTTPrimes(qBits, logN, l)
	p := primes.GenerateNTTPrimes(pBits, logN, 1)[0]
	all := append(append([]uint64(nil), qs...), p)
	return Parameters{
		LogN:    logN,
		L:       l,
		QBits:   qBits,
		PBits:   pBits,
		Scale:   math.Exp2(float64(qBits)),
		Moduli:  qs,
		Special: p,
		ring:    ring.NewRing(1<<uint(logN), all),
	}
}

// ParamsMNIST returns the FxHENN-MNIST parameter set of §VII-A: N = 8192,
// seven 30-bit primes (Q ≈ 210 bits), supporting multiplication depth 5 at
// a 128-bit security level.
func ParamsMNIST() Parameters { return NewParameters(13, 30, 7, 45) }

// ParamsCIFAR10 returns the FxHENN-CIFAR10 parameter set: N = 16384, seven
// 36-bit primes (Q ≈ 252 bits), 192-bit security.
func ParamsCIFAR10() Parameters { return NewParameters(14, 36, 7, 50) }

// paramsTest returns a small, fast parameter set for unit tests.
func paramsTest() Parameters { return NewParameters(8, 30, 5, 45) }

// N returns the ring degree.
func (p Parameters) N() int { return 1 << uint(p.LogN) }

// Slots returns the number of complex (equivalently real-vector) slots, N/2.
func (p Parameters) Slots() int { return p.N() / 2 }

// MaxLevel returns the highest usable ciphertext level (L, counting the
// number of active primes; a fresh ciphertext has MaxLevel primes).
func (p Parameters) MaxLevel() int { return p.L }

// Ring exposes the underlying RNS ring (q-basis plus the special prime as
// its last modulus).
func (p Parameters) Ring() *ring.Ring { return p.ring }

// AttachPool attaches a worker pool to the parameters' ring, enabling
// limb-, digit- and row-parallel evaluation for every evaluator, encoder
// and encryptor built from these Parameters. nil detaches (serial mode).
// Safe to call concurrently with evaluation.
func (p Parameters) AttachPool(pool *parallel.Pool) { p.ring.AttachPool(pool) }

// QBig returns log2 of the full ciphertext modulus, for reporting (the "Q"
// column of Table VII).
func (p Parameters) LogQ() int { return p.QBits * p.L }

// CiphertextBytes returns the in-memory size of a level-k ciphertext: two
// RNS polynomials of k rows of N 8-byte words. This drives the paper's
// buffer-size accounting.
func (p Parameters) CiphertextBytes(level int) int {
	return 2 * level * p.N() * 8
}

// PlaintextBytes returns the size of an encoded plaintext at level k.
func (p Parameters) PlaintextBytes(level int) int {
	return level * p.N() * 8
}

func (p Parameters) String() string {
	return fmt.Sprintf("CKKS{N=%d, L=%d, q=%d bits, p=%d bits, logQ=%d}",
		p.N(), p.L, p.QBits, p.PBits, p.LogQ())
}
