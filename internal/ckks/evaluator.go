package ckks

import (
	"fmt"

	"fxhenn/internal/modarith"
	"fxhenn/internal/ring"
)

// Evaluator executes homomorphic operations. It optionally records every
// operation into a Trace, which is how the hecnn package derives the
// per-layer HE-operation profiles (HOPs, KS counts) that drive the
// accelerator's design space exploration.
type Evaluator struct {
	params Parameters
	rlk    *RelinearizationKey
	rtk    *RotationKeys

	Trace *Trace // optional; nil disables recording

	// ModDown constants for the special prime p: p^{-1} mod q_j and
	// p mod q_j, plus the centering threshold.
	pInvQ []modarith.MulConst
	pModQ []uint64
	halfP uint64
	spIdx int // ring row index of the special prime
}

// NewEvaluator creates an evaluator. rlk may be nil if CCmult is never used;
// rtk may be nil if Rotate is never used.
func NewEvaluator(params Parameters, rlk *RelinearizationKey, rtk *RotationKeys) *Evaluator {
	r := params.Ring()
	ev := &Evaluator{params: params, rlk: rlk, rtk: rtk, spIdx: params.L}
	p := params.Special
	ev.halfP = p >> 1
	for j := 0; j < params.L; j++ {
		mj := r.Mods[j]
		ev.pInvQ = append(ev.pInvQ, modarith.NewMulConst(mj, mj.Inv(mj.Reduce(p))))
		ev.pModQ = append(ev.pModQ, mj.Reduce(p))
	}
	return ev
}

// Params returns the evaluator's parameters.
func (ev *Evaluator) Params() Parameters { return ev.params }

func (ev *Evaluator) record(op Op, level int) {
	if ev.Trace != nil {
		ev.Trace.Record(op, level)
	}
}

// alignLevels returns views of a and b truncated to their common level.
func alignLevels(a, b *Ciphertext) (*Ciphertext, *Ciphertext, int) {
	la, lb := a.Level(), b.Level()
	l := la
	if lb < l {
		l = lb
	}
	return ctView(a, l), ctView(b, l), l
}

func ctView(ct *Ciphertext, level int) *Ciphertext {
	out := &Ciphertext{Scale: ct.Scale}
	for _, p := range ct.Value {
		out.Value = append(out.Value, truncate(p, level))
	}
	return out
}

// AddNew returns a + b (CCadd). Operands are aligned to the lower level;
// scales must agree to within floating-point noise.
func (ev *Evaluator) AddNew(a, b *Ciphertext) *Ciphertext {
	av, bv, level := alignLevels(a, b)
	checkScales(av.Scale, bv.Scale)
	if a.Degree() != b.Degree() {
		panic("ckks: CCadd degree mismatch")
	}
	r := ev.params.Ring()
	out := NewCiphertext(ev.params, len(a.Value), level)
	out.Scale = av.Scale
	for i := range out.Value {
		r.Add(out.Value[i], av.Value[i], bv.Value[i])
	}
	ev.record(OpCCadd, level)
	return out
}

// SubNew returns a - b.
func (ev *Evaluator) SubNew(a, b *Ciphertext) *Ciphertext {
	av, bv, level := alignLevels(a, b)
	checkScales(av.Scale, bv.Scale)
	if a.Degree() != b.Degree() {
		panic("ckks: CCsub degree mismatch")
	}
	r := ev.params.Ring()
	out := NewCiphertext(ev.params, len(a.Value), level)
	out.Scale = av.Scale
	for i := range out.Value {
		r.Sub(out.Value[i], av.Value[i], bv.Value[i])
	}
	ev.record(OpCCadd, level)
	return out
}

// AddPlainNew returns ct + pt (PCadd). The plaintext must be at ct's level
// or higher and share its scale. pt is read-only (see the Plaintext reuse
// contract): it may be shared by concurrent AddPlainNew/MulPlainNew calls.
func (ev *Evaluator) AddPlainNew(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	level := ct.Level()
	if pt.Level() < level {
		panic("ckks: PCadd plaintext level below ciphertext level")
	}
	checkScales(ct.Scale, pt.Scale)
	r := ev.params.Ring()
	out := ct.Copy()
	r.Add(out.Value[0], out.Value[0], truncate(pt.Value, level))
	ev.record(OpPCadd, level)
	return out
}

// MulPlainNew returns ct ⊙ pt (PCmult). Scales multiply; a Rescale is
// normally applied afterwards, as in the paper's NKS pipeline. pt is
// read-only (see the Plaintext reuse contract): it may be shared by
// concurrent AddPlainNew/MulPlainNew calls.
func (ev *Evaluator) MulPlainNew(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	level := ct.Level()
	if pt.Level() < level {
		panic("ckks: PCmult plaintext level below ciphertext level")
	}
	r := ev.params.Ring()
	out := NewCiphertext(ev.params, len(ct.Value), level)
	out.Scale = ct.Scale * pt.Scale
	ptv := truncate(pt.Value, level)
	for i := range out.Value {
		r.MulCoeffs(out.Value[i], ct.Value[i], ptv)
	}
	ev.record(OpPCmult, level)
	return out
}

// MulNew returns a ⊗ b (CCmult) followed by relinearization when a
// relinearization key is available. Inputs must be degree-1.
func (ev *Evaluator) MulNew(a, b *Ciphertext) *Ciphertext {
	if a.Degree() != 1 || b.Degree() != 1 {
		panic("ckks: CCmult requires degree-1 operands")
	}
	av, bv, level := alignLevels(a, b)
	r := ev.params.Ring()
	d0 := r.NewPoly(level)
	d1 := r.NewPoly(level)
	d2 := r.NewPoly(level)
	r.MulCoeffs(d0, av.Value[0], bv.Value[0])
	r.MulCoeffs(d1, av.Value[0], bv.Value[1])
	r.MulCoeffsAdd(d1, av.Value[1], bv.Value[0])
	r.MulCoeffs(d2, av.Value[1], bv.Value[1])
	out := &Ciphertext{Value: []*ring.Poly{d0, d1, d2}, Scale: av.Scale * bv.Scale}
	ev.record(OpCCmult, level)
	if ev.rlk == nil {
		return out
	}
	return ev.RelinearizeNew(out)
}

// RelinearizeNew switches the d2 term of a degree-2 ciphertext back to the
// canonical secret, returning a degree-1 ciphertext (a KeySwitch operation
// in the paper's taxonomy).
func (ev *Evaluator) RelinearizeNew(ct *Ciphertext) *Ciphertext {
	if ct.Degree() != 2 {
		panic("ckks: Relinearize requires a degree-2 ciphertext")
	}
	if ev.rlk == nil {
		panic("ckks: no relinearization key")
	}
	level := ct.Level()
	r := ev.params.Ring()
	u0, u1 := ev.keySwitchCore(ct.Value[2], &ev.rlk.SwitchingKey)
	out := NewCiphertext(ev.params, 2, level)
	out.Scale = ct.Scale
	r.Add(out.Value[0], ct.Value[0], u0)
	r.Add(out.Value[1], ct.Value[1], u1)
	ev.record(OpRelin, level)
	return out
}

// RescaleNew divides the ciphertext by its last prime, dropping one level
// and dividing the scale accordingly (the Rescale HE operation, OP4).
func (ev *Evaluator) RescaleNew(ct *Ciphertext) *Ciphertext {
	level := ct.Level()
	if level < 2 {
		panic("ckks: cannot rescale below level 1")
	}
	r := ev.params.Ring()
	out := ct.Copy()
	qLast := ev.params.Moduli[level-1]
	for _, p := range out.Value {
		r.INTT(p)
		r.DivRoundByLastModulus(p)
		r.NTT(p)
	}
	out.Scale = ct.Scale / float64(qLast)
	ev.record(OpRescale, level)
	return out
}

// RotateNew rotates the slot vector left by k positions (a KeySwitch
// operation). A matching Galois key must have been generated.
func (ev *Evaluator) RotateNew(ct *Ciphertext, k int) *Ciphertext {
	if k == 0 {
		return ct.Copy()
	}
	g := ev.params.GaloisElementForRotation(k)
	return ev.automorphismNew(ct, g)
}

// ConjugateNew applies complex conjugation to the slots.
func (ev *Evaluator) ConjugateNew(ct *Ciphertext) *Ciphertext {
	return ev.automorphismNew(ct, ev.params.GaloisElementConjugate())
}

func (ev *Evaluator) automorphismNew(ct *Ciphertext, g uint64) *Ciphertext {
	if ct.Degree() != 1 {
		panic("ckks: rotation requires a degree-1 ciphertext")
	}
	if ev.rtk == nil {
		panic("ckks: no rotation keys")
	}
	swk, ok := ev.rtk.Keys[g]
	if !ok {
		panic(fmt.Sprintf("ckks: missing Galois key for element %d", g))
	}
	level := ct.Level()
	r := ev.params.Ring()

	// Apply σ_g in the coefficient domain to both parts.
	c0 := ct.Value[0].Copy()
	c1 := ct.Value[1].Copy()
	r.INTT(c0)
	r.INTT(c1)
	p0 := r.NewPoly(level)
	p1 := r.NewPoly(level)
	r.Automorphism(p0, c0, g)
	r.Automorphism(p1, c1, g)
	r.NTT(p0)
	r.NTT(p1)

	// σ_g(ct) now decrypts under σ_g(s); switch the c1 part back to s.
	u0, u1 := ev.keySwitchCore(p1, swk)
	out := NewCiphertext(ev.params, 2, level)
	out.Scale = ct.Scale
	r.Add(out.Value[0], p0, u0)
	out.Value[1] = u1
	ev.record(OpRotate, level)
	return out
}

// keySwitchCore computes the RNS-digit-decomposition keyswitch of the
// NTT-domain polynomial c at level k: it accumulates Σ_i d_i ⊗ (B_i, A_i)
// over the extended basis (q_0..q_{k-1}, p) and divides by the special
// modulus p. This is the paper's bottleneck HE operation (OP5): per digit it
// costs one INTT plus one NTT per target modulus, which is where the
// L-times-slower KS pipeline stage of Fig. 3 comes from.
func (ev *Evaluator) keySwitchCore(c *ring.Poly, swk *SwitchingKey) (u0, u1 *ring.Poly) {
	r := ev.params.Ring()
	k := c.K()
	n := r.N
	sp := ev.spIdx
	spMod := r.Mods[sp]
	spTab := r.Tables[sp]

	cc := c.Copy()
	r.INTT(cc)

	u0 = r.NewPoly(k)
	u1 = r.NewPoly(k)
	u0p := make([]uint64, n)
	u1p := make([]uint64, n)

	// The loop nest is target-row-outer so the k+1 extended-basis rows (q_0
	// .. q_{k-1} plus the special prime) are independent work items: row j
	// accumulates every digit's contribution into u0[j]/u1[j] only, and
	// digits run in ascending order inside each item, so the MulAddVec
	// accumulation order — and therefore the result — is bit-exact with the
	// serial digit-outer formulation.
	// The switching-key rows are stored in Montgomery form, so the MACs
	// below run REDC with lazy accumulators: each digit deposits a value in
	// [0, 2q) without reducing, and lazyMACGuard inserts a full reduction
	// whenever the running term count would overflow a uint64 (the
	// lazy-reduction bounds contract, DESIGN.md §16). The closing ReduceVec
	// restores canonical residues, so results stay bit-identical to the
	// eager Barrett formulation.
	pool := r.Pool()
	pool.Do(k+1, func(j int) {
		digit := make([]uint64, n)
		if j == k { // special-prime row
			maxLazy := spMod.MaxLazyAdds()
			terms := 0
			for i := 0; i < k; i++ {
				spMod.ReduceVec(digit, cc.Coeffs[i])
				spTab.Forward(digit)
				terms = lazyMACGuard(spMod, u0p, u1p, terms, maxLazy)
				spMod.MulMontAddLazyVec(u0p, digit, swk.B[i].Coeffs[sp])
				spMod.MulMontAddLazyVec(u1p, digit, swk.A[i].Coeffs[sp])
			}
			spMod.ReduceVec(u0p, u0p)
			spMod.ReduceVec(u1p, u1p)
			return
		}
		mj := r.Mods[j]
		maxLazy := mj.MaxLazyAdds()
		terms := 0
		for i := 0; i < k; i++ {
			d := cc.Coeffs[i] // digit i in coefficient domain, values < q_i
			if j == i {
				copy(digit, d)
			} else {
				mj.ReduceVec(digit, d)
			}
			r.Tables[j].Forward(digit)
			terms = lazyMACGuard(mj, u0.Coeffs[j], u1.Coeffs[j], terms, maxLazy)
			mj.MulMontAddLazyVec(u0.Coeffs[j], digit, swk.B[i].Coeffs[j])
			mj.MulMontAddLazyVec(u1.Coeffs[j], digit, swk.A[i].Coeffs[j])
		}
		mj.ReduceVec(u0.Coeffs[j], u0.Coeffs[j])
		mj.ReduceVec(u1.Coeffs[j], u1.Coeffs[j])
	})

	ev.modDown(u0, u0p)
	ev.modDown(u1, u1p)
	return u0, u1
}

// lazyMACGuard accounts for one more lazy MAC into the two accumulators:
// a reduced accumulator counts as one lazy term and every MulMontAddLazyVec
// adds another, so when the next term would exceed maxLazy the accumulators
// are reduced down to a single term. With 30–50-bit production primes
// maxLazy is in the billions and the reduction never fires; it exists for
// the q-near-2^62 corner the modarith property tests pin.
func lazyMACGuard(m modarith.Modulus, acc0, acc1 []uint64, terms, maxLazy int) int {
	if terms+1 > maxLazy {
		m.ReduceVec(acc0, acc0)
		m.ReduceVec(acc1, acc1)
		terms = 1
	}
	return terms + 1
}

// modDown divides the extended-basis accumulator (q-rows in u, special row
// uP, all NTT domain) by the special prime with centered rounding, leaving
// the q-basis result in u (NTT domain).
func (ev *Evaluator) modDown(u *ring.Poly, uP []uint64) {
	r := ev.params.Ring()
	sp := ev.spIdx
	r.INTT(u)
	r.Tables[sp].Inverse(uP)
	// Each row only reads the shared special row uP and rewrites itself.
	r.Pool().Do(u.K(), func(j int) {
		mj := r.Mods[j]
		inv := ev.pInvQ[j]
		pRed := ev.pModQ[j]
		row := u.Coeffs[j]
		for n := 0; n < r.N; n++ {
			rep := mj.Reduce(uP[n])
			if uP[n] > ev.halfP {
				rep = mj.Sub(rep, pRed)
			}
			row[n] = inv.Mul(mj.Sub(row[n], rep), mj)
		}
	})
	r.NTT(u)
}

// checkScales panics when two scales that must match diverge by more than a
// relative 2^-20 — a symptom of a mismanaged rescale chain in calling code.
func checkScales(a, b float64) {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > a/(1<<20) {
		panic(fmt.Sprintf("ckks: scale mismatch %g vs %g", a, b))
	}
}
