package ckks

import (
	"fmt"
	"math"
	"math/big"
	"math/bits"
	"math/cmplx"

	"fxhenn/internal/ring"
)

// Encoder maps vectors of N/2 complex numbers to and from ring elements via
// the canonical embedding ("batching" in §II-A: each vector element occupies
// one ciphertext slot, and Rotate permutes the slots).
type Encoder struct {
	params   Parameters
	roots    []complex128 // 2N-th roots of unity, roots[j] = e^{iπj/N}
	rotGroup []int        // 5^i mod 2N — the slot orbit of the automorphism group
}

// NewEncoder precomputes the FFT tables for the given parameters.
func NewEncoder(params Parameters) *Encoder {
	n := params.N()
	m := 2 * n
	e := &Encoder{params: params}
	e.roots = make([]complex128, m+1)
	for j := 0; j <= m; j++ {
		angle := 2 * math.Pi * float64(j) / float64(m)
		e.roots[j] = cmplx.Exp(complex(0, angle))
	}
	slots := n / 2
	e.rotGroup = make([]int, slots)
	five := 1
	for i := 0; i < slots; i++ {
		e.rotGroup[i] = five
		five = (five * 5) % m
	}
	return e
}

// Plaintext is an encoded (and possibly NTT-transformed) message with its
// scale and level. Level counts active q_i primes, as for ciphertexts.
//
// Reuse contract: every Evaluator operation that consumes a plaintext
// (AddPlainNew, MulPlainNew) treats it as strictly read-only, so one
// Plaintext may be used as an operand any number of times — including by
// concurrent evaluator calls — and its serialized form never changes.
// The serve-path weight cache (hecnn.CompiledNetwork) encodes each weight
// vector once and shares the Plaintext across every request on this
// contract; TestPlaintextReuseContract pins it with digests.
type Plaintext struct {
	Value *ring.Poly
	Scale float64
	IsNTT bool
}

// Level returns the number of active primes in the plaintext.
func (p *Plaintext) Level() int { return p.Value.K() }

// EncodeComplex encodes at most N/2 complex values at the given level and
// scale, returning an NTT-domain plaintext. Shorter inputs are zero-padded.
func (e *Encoder) EncodeComplex(values []complex128, level int, scale float64) *Plaintext {
	slots := e.params.Slots()
	if len(values) > slots {
		panic(fmt.Sprintf("ckks: %d values exceed %d slots", len(values), slots))
	}
	if level < 1 || level > e.params.L {
		panic(fmt.Sprintf("ckks: encode level %d out of range [1,%d]", level, e.params.L))
	}
	buf := make([]complex128, slots)
	copy(buf, values)
	e.specialInvFFT(buf)

	r := e.params.Ring()
	pt := r.NewPoly(level)
	bigTmp := new(big.Int)
	for j := 0; j < slots; j++ {
		setRounded(r, pt, j, real(buf[j])*scale, bigTmp)
		setRounded(r, pt, j+slots, imag(buf[j])*scale, bigTmp)
	}
	r.NTT(pt)
	return &Plaintext{Value: pt, Scale: scale, IsNTT: true}
}

// Encode encodes a real vector (the common case for CNN data).
func (e *Encoder) Encode(values []float64, level int, scale float64) *Plaintext {
	cv := make([]complex128, len(values))
	for i, v := range values {
		cv[i] = complex(v, 0)
	}
	return e.EncodeComplex(cv, level, scale)
}

// EncodeConst encodes the real constant c broadcast across every slot.
// A constant vector's canonical embedding is the constant polynomial
// round(c·Δ), whose NTT image is that value at every evaluation point, so
// the whole encode is one rounding plus a per-limb fill — no FFT and no
// NTT. This is the fast path behind CryptoNets-style batched evaluation,
// where every weight and bias is a broadcast scalar (hecnn.Plain.Const).
// It is also at least as accurate as Encode of the broadcast vector: the
// FFT round trip can only add rounding noise to the exact constant image.
func (e *Encoder) EncodeConst(c float64, level int, scale float64) *Plaintext {
	if level < 1 || level > e.params.L {
		panic(fmt.Sprintf("ckks: encode level %d out of range [1,%d]", level, e.params.L))
	}
	r := e.params.Ring()
	pt := r.NewPoly(level)
	rounded := math.Round(c * scale)
	if math.Abs(rounded) < math.MaxInt64/2 {
		iv := int64(rounded)
		for i := 0; i < level; i++ {
			q := r.Moduli[i]
			var v uint64
			if iv >= 0 {
				v = uint64(iv) % q
			} else {
				v = (q - uint64(-iv)%q) % q
			}
			row := pt.Coeffs[i]
			for j := range row {
				row[j] = v
			}
		}
		return &Plaintext{Value: pt, Scale: scale, IsNTT: true}
	}
	// Magnitudes beyond a word: reduce via big.Int per limb, as setRounded.
	bi := new(big.Int)
	new(big.Float).SetFloat64(rounded).Int(bi)
	for i := 0; i < level; i++ {
		q := new(big.Int).SetUint64(r.Moduli[i])
		rem := new(big.Int).Mod(bi, q)
		if rem.Sign() < 0 {
			rem.Add(rem, q)
		}
		v := rem.Uint64()
		row := pt.Coeffs[i]
		for j := range row {
			row[j] = v
		}
	}
	return &Plaintext{Value: pt, Scale: scale, IsNTT: true}
}

// setRounded writes round(v) into coefficient j, handling magnitudes beyond
// 64 bits via big.Int (large scales × large values can exceed a word).
func setRounded(r *ring.Ring, pt *ring.Poly, j int, v float64, tmp *big.Int) {
	rounded := math.Round(v)
	if math.Abs(rounded) < math.MaxInt64/2 {
		iv := int64(rounded)
		for i := 0; i < pt.K(); i++ {
			q := r.Moduli[i]
			if iv >= 0 {
				pt.Coeffs[i][j] = uint64(iv) % q
			} else {
				pt.Coeffs[i][j] = q - uint64(-iv)%q
				if pt.Coeffs[i][j] == q {
					pt.Coeffs[i][j] = 0
				}
			}
		}
		return
	}
	bf := new(big.Float).SetFloat64(rounded)
	bf.Int(tmp)
	r.SetCoeffBig(pt, j, tmp)
}

// DecodeComplex decodes a coefficient-domain-or-NTT plaintext back to its
// N/2 complex slot values.
func (e *Encoder) DecodeComplex(pt *Plaintext) []complex128 {
	r := e.params.Ring()
	poly := pt.Value
	if pt.IsNTT {
		poly = pt.Value.Copy()
		r.INTT(poly)
	}
	slots := e.params.Slots()
	buf := make([]complex128, slots)
	for j := 0; j < slots; j++ {
		re := bigToFloat(r.ComposeCoeff(poly, j)) / pt.Scale
		im := bigToFloat(r.ComposeCoeff(poly, j+slots)) / pt.Scale
		buf[j] = complex(re, im)
	}
	e.specialFFT(buf)
	return buf
}

// Decode returns the real parts of the decoded slots.
func (e *Encoder) Decode(pt *Plaintext) []float64 {
	cv := e.DecodeComplex(pt)
	out := make([]float64, len(cv))
	for i, v := range cv {
		out[i] = real(v)
	}
	return out
}

func bigToFloat(v *big.Int) float64 {
	f, _ := new(big.Float).SetInt(v).Float64()
	return f
}

// specialInvFFT applies the inverse canonical-embedding FFT over the slot
// orbit (the HEAAN "SpecialInvFFT"): it maps slot values to the twisted
// Fourier coefficients that the ring automorphisms permute cyclically.
func (e *Encoder) specialInvFFT(values []complex128) {
	n := len(values)
	m := 2 * e.params.N()
	for size := n; size >= 2; size >>= 1 {
		for i := 0; i < n; i += size {
			lenh := size >> 1
			lenq := size << 2
			for j := 0; j < lenh; j++ {
				idx := (lenq - (e.rotGroup[j] % lenq)) * (m / lenq)
				u := values[i+j] + values[i+j+lenh]
				v := (values[i+j] - values[i+j+lenh]) * e.roots[idx]
				values[i+j] = u
				values[i+j+lenh] = v
			}
		}
	}
	inv := complex(1/float64(n), 0)
	for i := range values {
		values[i] *= inv
	}
	sliceBitReverse(values)
}

// specialFFT is the forward counterpart used by decoding.
func (e *Encoder) specialFFT(values []complex128) {
	n := len(values)
	m := 2 * e.params.N()
	sliceBitReverse(values)
	for size := 2; size <= n; size <<= 1 {
		for i := 0; i < n; i += size {
			lenh := size >> 1
			lenq := size << 2
			for j := 0; j < lenh; j++ {
				idx := (e.rotGroup[j] % lenq) * (m / lenq)
				u := values[i+j]
				v := values[i+j+lenh] * e.roots[idx]
				values[i+j] = u + v
				values[i+j+lenh] = u - v
			}
		}
	}
}

func sliceBitReverse(v []complex128) {
	n := len(v)
	logN := bits.TrailingZeros(uint(n))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse32(uint32(i)) >> (32 - uint(logN)))
		if i < j {
			v[i], v[j] = v[j], v[i]
		}
	}
}
