package ckks

import (
	"bytes"
	"testing"
)

// FuzzReadCiphertext hardens the wire format: arbitrary byte streams must
// either parse into a structurally-valid ciphertext or error — never panic
// or allocate absurdly. Seeds include a genuine serialized ciphertext and
// several mutations.
func FuzzReadCiphertext(f *testing.F) {
	params := NewParameters(6, 30, 3, 45) // tiny ring keeps the fuzzer fast
	kg := NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := NewEncoder(params)
	encryptor := NewEncryptor(params, pk, 2)
	ct := encryptor.Encrypt(enc.Encode([]float64{1, 2, 3}, 2, params.Scale))
	valid, _ := ct.MarshalBinary()

	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte{})
	f.Add([]byte{0xC1, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0})
	mutated := append([]byte(nil), valid...)
	mutated[1] = 7
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCiphertext(bytes.NewReader(data), params)
		if err != nil {
			return
		}
		// Anything that parses must be structurally sound.
		if got.Degree() < 0 || got.Level() < 1 || got.Level() > params.L {
			t.Fatalf("parsed ciphertext with bad shape: degree %d level %d", got.Degree(), got.Level())
		}
		for _, p := range got.Value {
			if len(p.Coeffs[0]) != params.N() {
				t.Fatal("parsed ciphertext with wrong degree")
			}
		}
		// And must re-serialize cleanly.
		if _, err := got.MarshalBinary(); err != nil {
			t.Fatalf("reserialization failed: %v", err)
		}
	})
}

// FuzzReadSwitchingKey does the same for the (much larger) key format.
func FuzzReadSwitchingKey(f *testing.F) {
	params := NewParameters(6, 30, 3, 45)
	kg := NewKeyGenerator(params, 3)
	sk := kg.GenSecretKey()
	rlk := kg.GenRelinearizationKey(sk)
	var buf bytes.Buffer
	if _, err := rlk.SwitchingKey.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:20])
	f.Add([]byte{0xC4, 0xFF, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		swk, err := ReadSwitchingKey(bytes.NewReader(data), params)
		if err != nil {
			return
		}
		if len(swk.B) != len(swk.A) || len(swk.B) < 1 || len(swk.B) > params.L {
			t.Fatal("parsed key with bad digit structure")
		}
	})
}
