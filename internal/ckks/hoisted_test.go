package ckks

import (
	"math"
	"math/rand"
	"testing"
)

// TestHoistedMatchesSequentialRotations: rotating via a shared hoisted
// decomposition must give the same plaintexts as independent rotations.
func TestHoistedMatchesSequentialRotations(t *testing.T) {
	rots := []int{1, 2, 4, 8, 16}
	tc := newTestContext(t, rots)
	rng := rand.New(rand.NewSource(60))
	v := randVec(tc.params.Slots(), 3, rng)
	ct := tc.encryptVec(v, 4)

	hoisted := tc.eval.RotateHoisted(ct, rots)
	slots := tc.params.Slots()
	for _, k := range rots {
		seq := tc.decryptVec(tc.eval.RotateNew(ct, k))
		hst := tc.decryptVec(hoisted[k])
		for i := 0; i < slots; i++ {
			want := v[(i+k)%slots]
			if math.Abs(hst[i]-want) > 1e-2 {
				t.Fatalf("k=%d slot %d: hoisted %g want %g", k, i, hst[i], want)
			}
			if math.Abs(hst[i]-seq[i]) > 1e-2 {
				t.Fatalf("k=%d slot %d: hoisted %g vs sequential %g", k, i, hst[i], seq[i])
			}
		}
	}
}

// TestHoistedRotateAndSum: the KS-layer ladder computed entirely with one
// decomposition per rung still sums correctly.
func TestHoistedRotateAndSum(t *testing.T) {
	rots := []int{1, 2, 4, 8, 16, 32, 64}
	tc := newTestContext(t, rots)
	rng := rand.New(rand.NewSource(61))
	slots := tc.params.Slots()
	v := randVec(slots, 1, rng)
	acc := tc.encryptVec(v, 3)
	for k := 1; k < slots; k <<= 1 {
		rot := tc.eval.RotateHoisted(acc, []int{k})[k]
		acc = tc.eval.AddNew(acc, rot)
	}
	want := 0.0
	for _, x := range v {
		want += x
	}
	if got := tc.decryptVec(acc)[0]; math.Abs(got-want) > 0.5 {
		t.Fatalf("hoisted rotate-and-sum: %g want %g", got, want)
	}
}

func TestHoistedZeroAndDuplicates(t *testing.T) {
	tc := newTestContext(t, []int{3})
	rng := rand.New(rand.NewSource(62))
	v := randVec(16, 1, rng)
	ct := tc.encryptVec(v, 3)
	out := tc.eval.RotateHoisted(ct, []int{0, 3, 3, 0})
	if len(out) != 2 {
		t.Fatalf("expected 2 distinct results, got %d", len(out))
	}
	requireClose(t, tc.decryptVec(out[0])[:8], v[:8], 1e-4, "hoisted rotate 0")
}

func TestHoistedValidation(t *testing.T) {
	tc := newTestContext(t, []int{1})
	rng := rand.New(rand.NewSource(63))
	ct := tc.encryptVec(randVec(8, 1, rng), 3)
	// Missing key.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("missing Galois key did not panic")
			}
		}()
		tc.eval.RotateHoisted(ct, []int{7})
	}()
	// No rotation keys at all.
	evNoKeys := NewEvaluator(tc.params, nil, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no keys did not panic")
			}
		}()
		evNoKeys.RotateHoisted(ct, []int{1})
	}()
}

// BenchmarkSequentialVsHoisted quantifies the hoisting win for a ladder of
// rotations of the same ciphertext.
func BenchmarkSequentialRotations(b *testing.B) {
	rots := []int{1, 2, 4, 8, 16, 32}
	tc := newTestContext(b, rots)
	ct := tc.encryptVec(randVec(tc.params.Slots(), 1, rand.New(rand.NewSource(64))), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range rots {
			tc.eval.RotateNew(ct, k)
		}
	}
}

func BenchmarkHoistedRotations(b *testing.B) {
	rots := []int{1, 2, 4, 8, 16, 32}
	tc := newTestContext(b, rots)
	ct := tc.encryptVec(randVec(tc.params.Slots(), 1, rand.New(rand.NewSource(65))), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.eval.RotateHoisted(ct, rots)
	}
}
