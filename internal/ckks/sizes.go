package ckks

// Key and element size accounting. The paper stores the keyswitch keys
// off-chip because of their "large data volume" (§VI-A); these helpers make
// that volume concrete for reports and the MLaaS setup cost.

// SerializedSize returns the wire size of the public key.
func (pk *PublicKey) SerializedSize() int {
	return 1 + pk.B.SerializedSize() + pk.A.SerializedSize()
}

// SerializedSize returns the wire size of a switching key: one RLWE pair
// per digit over the extended basis.
func (swk *SwitchingKey) SerializedSize() int {
	n := 3
	for i := range swk.B {
		n += swk.B[i].SerializedSize() + swk.A[i].SerializedSize()
	}
	return n
}

// SerializedSize sums the Galois keys.
func (rk *RotationKeys) SerializedSize() int {
	n := 0
	for _, swk := range rk.Keys {
		n += swk.SerializedSize()
	}
	return n
}

// EvaluationKeyBytes returns the total evaluation-key material a server
// needs for the given rotation count: the relinearization key plus one
// Galois key per rotation, each L digits of two (L+1)-row polynomials.
func EvaluationKeyBytes(params Parameters, rotations int) int64 {
	perPoly := int64(8 + 8*(params.L+1)*params.N())
	perKey := int64(3) + 2*perPoly*int64(params.L)
	return perKey * int64(rotations+1)
}
