package ckks

import (
	"math"
	"math/rand"
	"testing"
)

// measureErr returns the max absolute slot error of ct against want.
func measureErr(tc *testContext, ct *Ciphertext, want []float64) float64 {
	got := tc.decryptVec(ct)
	worst := 0.0
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestNoiseEstimateSound: across representative operation chains, the
// analytic bound must dominate the measured error without being absurdly
// loose (≤ 10^5 slack — it is a high-probability bound built from
// worst-case terms).
func TestNoiseEstimateSound(t *testing.T) {
	tc := newTestContext(t, []int{1})
	m := NewNoiseModel(tc.params)
	rng := rand.New(rand.NewSource(70))

	check := func(name string, measured float64, est NoiseEstimate) {
		t.Helper()
		if measured > est.Err {
			t.Fatalf("%s: measured error %.3g exceeds bound %.3g", name, measured, est.Err)
		}
		if est.Err > measured*1e5 && est.Err > 1e-3 {
			t.Fatalf("%s: bound %.3g uselessly loose vs measured %.3g", name, est.Err, measured)
		}
	}

	// Fresh encryption.
	v := randVec(tc.params.Slots(), 1, rng)
	ct := tc.encryptVec(v, tc.params.L)
	est := m.Fresh(1, tc.params.L)
	check("fresh", measureErr(tc, ct, v), est)

	// CCadd chain.
	sum := ct
	sumEst := est
	want := append([]float64(nil), v...)
	for i := 0; i < 4; i++ {
		sum = tc.eval.AddNew(sum, ct)
		sumEst = m.Add(sumEst, est)
		for j := range want {
			want[j] += v[j]
		}
	}
	check("add chain", measureErr(tc, sum, want), sumEst)

	// PCmult + Rescale chain (depth 3).
	cur := ct
	curEst := est
	want = append([]float64(nil), v...)
	for d := 0; d < 3; d++ {
		w := randVec(tc.params.Slots(), 1, rng)
		pw := tc.enc.Encode(w, cur.Level(), tc.params.Scale)
		cur = tc.eval.RescaleNew(tc.eval.MulPlainNew(cur, pw))
		curEst = m.Rescale(m.MulPlain(curEst, 1))
		for j := range want {
			want[j] *= w[j]
		}
	}
	check("pcmult depth 3", measureErr(tc, cur, want), curEst)

	// Square + rescale.
	sq := tc.eval.RescaleNew(tc.eval.MulNew(ct, ct))
	sqEst := m.Rescale(m.Square(est))
	wantSq := make([]float64, len(v))
	for i := range v {
		wantSq[i] = v[i] * v[i]
	}
	check("square", measureErr(tc, sq, wantSq), sqEst)

	// Rotation ladder.
	rot := ct
	rotEst := est
	for i := 0; i < 3; i++ {
		rot = tc.eval.RotateNew(rot, 1)
		rotEst = m.Rotate(rotEst)
	}
	wantRot := make([]float64, len(v))
	slots := tc.params.Slots()
	for i := range v {
		wantRot[i] = v[(i+3)%slots]
	}
	check("rotate x3", measureErr(tc, rot, wantRot), rotEst)
}

// TestNoiseLevelsAndScales: the estimator's bookkeeping mirrors the real
// evaluator's levels and scales.
func TestNoiseLevelsAndScales(t *testing.T) {
	params := paramsTest()
	m := NewNoiseModel(params)
	est := m.Fresh(1, params.L)
	if est.Level != params.L || est.Scale != params.Scale {
		t.Fatal("fresh bookkeeping wrong")
	}
	est = m.Rescale(m.MulPlain(est, 2))
	if est.Level != params.L-1 {
		t.Fatalf("level %d after rescale", est.Level)
	}
	if est.MaxVal != 2 {
		t.Fatalf("maxVal %g", est.MaxVal)
	}
	// Scale returns to ≈ the base scale after one mul+rescale.
	if est.Scale < params.Scale/2 || est.Scale > params.Scale*2 {
		t.Fatalf("scale %g drifted", est.Scale)
	}
}

// TestCapacityCheck: the depth-5 HE-CNN pattern passes at L=7 but a message
// too large for the remaining modulus is flagged.
func TestCapacityCheck(t *testing.T) {
	params := NewParameters(8, 30, 7, 45)
	m := NewNoiseModel(params)

	est := m.Fresh(1.5, params.L)
	for d := 0; d < 5; d++ {
		if d%2 == 0 {
			est = m.Rescale(m.MulPlain(est, 1))
		} else {
			est = m.Rescale(m.Square(est))
		}
		if !m.CapacityOK(est) {
			t.Fatalf("depth-%d step flagged as overflow at L=7", d+1)
		}
	}
	if est.Level != 2 {
		t.Fatalf("final level %d", est.Level)
	}

	// A huge message at level 1 must be flagged.
	bad := NoiseEstimate{Err: 0, MaxVal: 1 << 20, Scale: params.Scale, Level: 1}
	if m.CapacityOK(bad) {
		t.Fatal("level-1 overflow not flagged")
	}
}
