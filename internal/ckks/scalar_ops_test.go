package ckks

import (
	"math"
	"math/rand"
	"testing"
)

func TestNegNew(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(90))
	v := randVec(tc.params.Slots(), 5, rng)
	ct := tc.encryptVec(v, 3)
	neg := tc.eval.NegNew(ct)
	got := tc.decryptVec(neg)
	for i := range v {
		if math.Abs(got[i]+v[i]) > 1e-4 {
			t.Fatalf("slot %d: -(%g) = %g", i, v[i], got[i])
		}
	}
	// ct + (-ct) ≈ 0.
	zero := tc.decryptVec(tc.eval.AddNew(ct, neg))
	for i := 0; i < 16; i++ {
		if math.Abs(zero[i]) > 1e-4 {
			t.Fatalf("ct + (-ct) slot %d = %g", i, zero[i])
		}
	}
}

func TestAddConstNew(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(91))
	v := randVec(tc.params.Slots(), 5, rng)
	ct := tc.encryptVec(v, 3)
	for _, c := range []float64{0, 1.5, -2.75, 100} {
		out := tc.eval.AddConstNew(ct, c)
		if out.Level() != ct.Level() {
			t.Fatal("AddConst changed the level")
		}
		got := tc.decryptVec(out)
		for i := 0; i < 32; i++ {
			if math.Abs(got[i]-(v[i]+c)) > 1e-4 {
				t.Fatalf("c=%g slot %d: got %g want %g", c, i, got[i], v[i]+c)
			}
		}
	}
}

func TestMulByConstNew(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(92))
	v := randVec(tc.params.Slots(), 3, rng)
	ct := tc.encryptVec(v, 4)
	for _, c := range []float64{2, -0.5, 3.14159} {
		out := tc.eval.RescaleNew(tc.eval.MulByConstNew(ct, c))
		if out.Level() != 3 {
			t.Fatal("level bookkeeping wrong")
		}
		got := tc.decryptVec(out)
		for i := 0; i < 32; i++ {
			if math.Abs(got[i]-v[i]*c) > 1e-3 {
				t.Fatalf("c=%g slot %d: got %g want %g", c, i, got[i], v[i]*c)
			}
		}
	}
}

func TestSubPlainNew(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(93))
	v := randVec(16, 5, rng)
	w := randVec(16, 5, rng)
	ct := tc.encryptVec(v, 3)
	pw := tc.enc.Encode(w, 3, tc.params.Scale)
	got := tc.decryptVec(tc.eval.SubPlainNew(ct, pw))
	for i := range v {
		if math.Abs(got[i]-(v[i]-w[i])) > 1e-4 {
			t.Fatalf("slot %d: got %g want %g", i, got[i], v[i]-w[i])
		}
	}
}

// TestPolynomialEvaluation composes the scalar ops: evaluate
// p(x) = 0.5x² − x + 2 homomorphically (one CCmult plus scalar folds) and
// compare against cleartext — the pattern HE activations beyond square use.
func TestPolynomialEvaluation(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(94))
	v := randVec(tc.params.Slots(), 1.5, rng)
	ct := tc.encryptVec(v, tc.params.L)

	// Scale discipline: both addends must pass through the same rescale
	// chain (divide by the same primes) or their scales drift apart —
	// so −x rides a parallel ×(−1) pipeline at the same levels as 0.5x².
	x2 := tc.eval.RescaleNew(tc.eval.MulNew(ct, ct))           // x², level L−1
	half := tc.eval.RescaleNew(tc.eval.MulByConstNew(x2, 0.5)) // 0.5x², level L−2
	negx := tc.eval.RescaleNew(tc.eval.MulByConstNew(ct, -1))  // −x, level L−1
	negx = tc.eval.RescaleNew(tc.eval.MulByConstNew(negx, 1))  // −x, level L−2
	sum := tc.eval.AddNew(half, negx)
	out := tc.eval.AddConstNew(sum, 2) // +2

	got := tc.decryptVec(out)
	for i := 0; i < 64; i++ {
		want := 0.5*v[i]*v[i] - v[i] + 2
		if math.Abs(got[i]-want) > 1e-2 {
			t.Fatalf("slot %d: p(x) = %g want %g", i, got[i], want)
		}
	}
}
