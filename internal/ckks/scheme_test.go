package ckks

import (
	"math"
	"math/rand"
	"testing"
)

// testContext bundles a full CKKS instantiation for scheme-level tests.
type testContext struct {
	params Parameters
	enc    *Encoder
	kg     *KeyGenerator
	sk     *SecretKey
	pk     *PublicKey
	rlk    *RelinearizationKey
	rtk    *RotationKeys
	encr   *Encryptor
	decr   *Decryptor
	eval   *Evaluator
}

func newTestContext(t testing.TB, rotations []int) *testContext {
	t.Helper()
	params := paramsTest()
	kg := NewKeyGenerator(params, 1000)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	var rtk *RotationKeys
	if rotations != nil {
		rtk = kg.GenRotationKeys(sk, rotations, true)
	}
	eval := NewEvaluator(params, rlk, rtk)
	eval.Trace = &Trace{}
	return &testContext{
		params: params,
		enc:    NewEncoder(params),
		kg:     kg, sk: sk, pk: pk, rlk: rlk, rtk: rtk,
		encr: NewEncryptor(params, pk, 2000),
		decr: NewDecryptor(params, sk),
		eval: eval,
	}
}

func (tc *testContext) encryptVec(v []float64, level int) *Ciphertext {
	return tc.encr.Encrypt(tc.enc.Encode(v, level, tc.params.Scale))
}

func (tc *testContext) decryptVec(ct *Ciphertext) []float64 {
	return tc.enc.Decode(tc.decr.Decrypt(ct))
}

func requireClose(t *testing.T, got, want []float64, tol float64, what string) {
	t.Helper()
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: slot %d: got %g want %g (tol %g)", what, i, got[i], want[i], tol)
		}
	}
}

func TestEncryptDecrypt(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(10))
	for _, level := range []int{2, tc.params.L} {
		v := randVec(tc.params.Slots(), 10, rng)
		ct := tc.encryptVec(v, level)
		if ct.Level() != level || ct.Degree() != 1 {
			t.Fatalf("fresh ciphertext shape: level %d degree %d", ct.Level(), ct.Degree())
		}
		got := tc.decryptVec(ct)
		requireClose(t, got[:len(v)], v, 1e-4, "enc/dec")
	}
}

func TestHomomorphicAddSub(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(11))
	a := randVec(tc.params.Slots(), 10, rng)
	b := randVec(tc.params.Slots(), 10, rng)
	ca := tc.encryptVec(a, 3)
	cb := tc.encryptVec(b, 3)

	sum := tc.eval.AddNew(ca, cb)
	want := make([]float64, len(a))
	for i := range a {
		want[i] = a[i] + b[i]
	}
	requireClose(t, tc.decryptVec(sum)[:len(a)], want, 1e-4, "CCadd")

	diff := tc.eval.SubNew(ca, cb)
	for i := range a {
		want[i] = a[i] - b[i]
	}
	requireClose(t, tc.decryptVec(diff)[:len(a)], want, 1e-4, "CCsub")
}

func TestAddAlignsMismatchedLevels(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(12))
	a := randVec(8, 5, rng)
	b := randVec(8, 5, rng)
	ca := tc.encryptVec(a, 4)
	cb := tc.encryptVec(b, 2)
	sum := tc.eval.AddNew(ca, cb)
	if sum.Level() != 2 {
		t.Fatalf("sum level %d, want 2", sum.Level())
	}
	got := tc.decryptVec(sum)
	for i := range a {
		if math.Abs(got[i]-(a[i]+b[i])) > 1e-4 {
			t.Fatalf("slot %d mismatch", i)
		}
	}
}

func TestAddPlain(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(13))
	a := randVec(16, 5, rng)
	b := randVec(16, 5, rng)
	ca := tc.encryptVec(a, 3)
	pb := tc.enc.Encode(b, 3, tc.params.Scale)
	sum := tc.eval.AddPlainNew(ca, pb)
	got := tc.decryptVec(sum)
	for i := range a {
		if math.Abs(got[i]-(a[i]+b[i])) > 1e-4 {
			t.Fatalf("PCadd slot %d mismatch", i)
		}
	}
}

func TestMulPlainRescale(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(14))
	a := randVec(tc.params.Slots(), 4, rng)
	w := randVec(tc.params.Slots(), 4, rng)
	ct := tc.encryptVec(a, 4)
	pw := tc.enc.Encode(w, 4, tc.params.Scale)

	prod := tc.eval.MulPlainNew(ct, pw)
	if prod.Level() != 4 {
		t.Fatalf("PCmult level %d", prod.Level())
	}
	wantScale := tc.params.Scale * tc.params.Scale
	if math.Abs(prod.Scale-wantScale) > wantScale/1e6 {
		t.Fatalf("PCmult scale %g want %g", prod.Scale, wantScale)
	}

	res := tc.eval.RescaleNew(prod)
	if res.Level() != 3 {
		t.Fatalf("rescaled level %d, want 3", res.Level())
	}
	// Scale after rescale ≈ scale²/q_3 ≈ scale.
	if res.Scale < tc.params.Scale/2 || res.Scale > tc.params.Scale*2 {
		t.Fatalf("rescaled scale %g far from %g", res.Scale, tc.params.Scale)
	}
	want := make([]float64, len(a))
	for i := range a {
		want[i] = a[i] * w[i]
	}
	requireClose(t, tc.decryptVec(res)[:len(a)], want, 1e-3, "PCmult+Rescale")
}

func TestMulCiphertextRelinearize(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(15))
	a := randVec(tc.params.Slots(), 3, rng)
	b := randVec(tc.params.Slots(), 3, rng)
	ca := tc.encryptVec(a, 4)
	cb := tc.encryptVec(b, 4)

	prod := tc.eval.MulNew(ca, cb)
	if prod.Degree() != 1 {
		t.Fatalf("relinearized degree %d", prod.Degree())
	}
	res := tc.eval.RescaleNew(prod)
	want := make([]float64, len(a))
	for i := range a {
		want[i] = a[i] * b[i]
	}
	requireClose(t, tc.decryptVec(res)[:len(a)], want, 1e-2, "CCmult+Relin+Rescale")
}

// TestSquareActivationChain mimics an HE-CNN activation: square twice with
// rescales, the deepest multiplicative pattern in the paper's networks.
func TestSquareActivationChain(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(16))
	a := randVec(tc.params.Slots(), 1.5, rng)
	ct := tc.encryptVec(a, tc.params.L)

	sq := tc.eval.RescaleNew(tc.eval.MulNew(ct, ct))
	sq2 := tc.eval.RescaleNew(tc.eval.MulNew(sq, sq))
	if sq2.Level() != tc.params.L-2 {
		t.Fatalf("level after two squares: %d", sq2.Level())
	}
	want := make([]float64, len(a))
	for i := range a {
		want[i] = math.Pow(a[i], 4)
	}
	requireClose(t, tc.decryptVec(sq2)[:len(a)], want, 1e-1, "square chain")
}

func TestRotation(t *testing.T) {
	rots := []int{1, 3, 5, 17}
	tc := newTestContext(t, rots)
	rng := rand.New(rand.NewSource(17))
	v := randVec(tc.params.Slots(), 5, rng)
	ct := tc.encryptVec(v, 3)
	slots := tc.params.Slots()
	for _, k := range rots {
		rot := tc.eval.RotateNew(ct, k)
		got := tc.decryptVec(rot)
		for i := 0; i < slots; i++ {
			want := v[(i+k)%slots]
			if math.Abs(got[i]-want) > 1e-2 {
				t.Fatalf("rotate %d slot %d: got %g want %g", k, i, got[i], want)
			}
		}
	}
	// Rotation by zero is a copy without keyswitching.
	r0 := tc.eval.RotateNew(ct, 0)
	requireClose(t, tc.decryptVec(r0)[:8], v[:8], 1e-4, "rotate 0")
}

func TestConjugate(t *testing.T) {
	tc := newTestContext(t, []int{})
	rng := rand.New(rand.NewSource(18))
	v := make([]complex128, tc.params.Slots())
	for i := range v {
		v[i] = complex(rng.Float64(), rng.Float64())
	}
	pt := tc.enc.EncodeComplex(v, 3, tc.params.Scale)
	ct := tc.encr.Encrypt(pt)
	conj := tc.eval.ConjugateNew(ct)
	got := tc.enc.DecodeComplex(tc.decr.Decrypt(conj))
	for i := range v {
		if math.Abs(real(got[i])-real(v[i])) > 1e-2 || math.Abs(imag(got[i])+imag(v[i])) > 1e-2 {
			t.Fatalf("conjugate slot %d: got %v want conj(%v)", i, got[i], v[i])
		}
	}
}

// TestRotateAndSum computes a slot inner product via log-rotations — the KS
// layer pattern of §V-A (Fig. 3).
func TestRotateAndSum(t *testing.T) {
	tc := newTestContext(t, []int{1, 2, 4, 8, 16, 32, 64})
	rng := rand.New(rand.NewSource(19))
	slots := tc.params.Slots()
	v := randVec(slots, 1, rng)
	ct := tc.encryptVec(v, 3)
	acc := ct
	for k := 1; k < slots; k <<= 1 {
		acc = tc.eval.AddNew(acc, tc.eval.RotateNew(acc, k))
	}
	want := 0.0
	for _, x := range v {
		want += x
	}
	got := tc.decryptVec(acc)
	if math.Abs(got[0]-want) > 0.5 {
		t.Fatalf("rotate-and-sum: got %g want %g", got[0], want)
	}
}

func TestDropLevel(t *testing.T) {
	tc := newTestContext(t, nil)
	rng := rand.New(rand.NewSource(20))
	v := randVec(16, 5, rng)
	ct := tc.encryptVec(v, 4)
	ct.DropLevel(2)
	if ct.Level() != 2 {
		t.Fatalf("level %d after drop", ct.Level())
	}
	requireClose(t, tc.decryptVec(ct)[:len(v)], v, 1e-4, "drop level")
}

func TestTraceRecording(t *testing.T) {
	tc := newTestContext(t, []int{1})
	rng := rand.New(rand.NewSource(21))
	v := randVec(16, 1, rng)
	ct := tc.encryptVec(v, 4)
	pw := tc.enc.Encode(v, 4, tc.params.Scale)

	tc.eval.Trace.Reset()
	prod := tc.eval.MulPlainNew(ct, pw)
	res := tc.eval.RescaleNew(prod)
	sq := tc.eval.MulNew(res, res) // CCmult + Relin
	_ = tc.eval.RotateNew(sq, 1)   // Rotate

	tr := tc.eval.Trace
	if tr.Count(OpPCmult) != 1 || tr.Count(OpRescale) != 1 || tr.Count(OpCCmult) != 1 ||
		tr.Count(OpRelin) != 1 || tr.Count(OpRotate) != 1 {
		t.Fatalf("trace counts wrong: %+v", tr.Events)
	}
	if tr.KeySwitchCount() != 2 {
		t.Fatalf("KS count %d want 2", tr.KeySwitchCount())
	}
	if tr.Total() != 5 {
		t.Fatalf("total %d want 5", tr.Total())
	}
	// Levels recorded correctly: PCmult at 4, CCmult at 3.
	if tr.Events[0].Level != 4 || tr.Events[2].Level != 3 {
		t.Fatalf("levels wrong: %+v", tr.Events)
	}
}

func TestEvaluatorValidation(t *testing.T) {
	tc := newTestContext(t, nil)
	v := randVec(8, 1, nil2())
	ct := tc.encryptVec(v, 2)

	// Rescale below level 2 must panic.
	low := tc.encryptVec(v, 2)
	r1 := tc.eval.RescaleNew(tc.eval.MulPlainNew(low, tc.enc.Encode(v, 2, tc.params.Scale)))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("rescale at level 1 did not panic")
			}
		}()
		tc.eval.RescaleNew(r1)
	}()

	// Rotation without keys must panic.
	evNoKeys := NewEvaluator(tc.params, nil, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("rotation without keys did not panic")
			}
		}()
		evNoKeys.RotateNew(ct, 1)
	}()

	// Relinearize on degree-1 ciphertext must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("relinearize degree-1 did not panic")
			}
		}()
		tc.eval.RelinearizeNew(ct)
	}()

	// Scale mismatch in CCadd must panic.
	other := tc.encryptVec(v, 2)
	other.Scale *= 2
	func() {
		defer func() {
			if recover() == nil {
				t.Error("scale mismatch did not panic")
			}
		}()
		tc.eval.AddNew(ct, other)
	}()
}

func nil2() *rand.Rand { return rand.New(rand.NewSource(99)) }

// TestNoiseBudgetAcrossDepth runs the paper's depth-5 pattern end to end:
// five multiplicative levels with interleaved rescales must keep ≈1e-2
// precision, which is the regime the HE-CNN inference operates in.
func TestNoiseBudgetAcrossDepth(t *testing.T) {
	params := NewParameters(8, 30, 7, 45)
	kg := NewKeyGenerator(params, 3000)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	eval := NewEvaluator(params, rlk, nil)
	enc := NewEncoder(params)
	encr := NewEncryptor(params, pk, 3001)
	decr := NewDecryptor(params, sk)

	rng := rand.New(rand.NewSource(22))
	v := randVec(params.Slots(), 1.1, rng)
	ct := encr.Encrypt(enc.Encode(v, params.L, params.Scale))
	want := append([]float64(nil), v...)

	for depth := 0; depth < 5; depth++ {
		w := randVec(params.Slots(), 1.0, rng)
		pw := enc.Encode(w, ct.Level(), ct.Scale)
		ct = eval.RescaleNew(eval.MulPlainNew(ct, pw))
		for i := range want {
			want[i] *= w[i]
		}
	}
	if ct.Level() != 2 {
		t.Fatalf("final level %d, want 2", ct.Level())
	}
	got := enc.Decode(decr.Decrypt(ct))
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-2 {
			t.Fatalf("slot %d after depth 5: got %g want %g", i, got[i], want[i])
		}
	}
}

func BenchmarkPCmultTestParams(b *testing.B) {
	tc := newTestContext(b, nil)
	v := randVec(tc.params.Slots(), 1, rand.New(rand.NewSource(23)))
	ct := tc.encryptVec(v, 4)
	pw := tc.enc.Encode(v, 4, tc.params.Scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.eval.MulPlainNew(ct, pw)
	}
}

func BenchmarkRescaleTestParams(b *testing.B) {
	tc := newTestContext(b, nil)
	v := randVec(tc.params.Slots(), 1, rand.New(rand.NewSource(24)))
	ct := tc.encryptVec(v, 4)
	pw := tc.enc.Encode(v, 4, tc.params.Scale)
	prod := tc.eval.MulPlainNew(ct, pw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.eval.RescaleNew(prod)
	}
}

func BenchmarkRotateTestParams(b *testing.B) {
	tc := newTestContext(b, []int{1})
	v := randVec(tc.params.Slots(), 1, rand.New(rand.NewSource(25)))
	ct := tc.encryptVec(v, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.eval.RotateNew(ct, 1)
	}
}
