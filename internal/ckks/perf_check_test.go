package ckks

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestMNISTParamsSmoke is a smoke test at the paper's real MNIST parameters:
// one PCmult+Rescale and one Rotate at N=8192, L=7 must be correct. It also
// logs wall-clock costs, which bound the functional HE-CNN runtime.
func TestMNISTParamsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size parameters")
	}
	start := time.Now()
	params := ParamsMNIST()
	kg := NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rtk := kg.GenRotationKeys(sk, []int{1}, false)
	t.Logf("setup: %v", time.Since(start))

	enc := NewEncoder(params)
	encr := NewEncryptor(params, pk, 2)
	decr := NewDecryptor(params, sk)
	eval := NewEvaluator(params, nil, rtk)

	rng := rand.New(rand.NewSource(3))
	v := randVec(params.Slots(), 1, rng)
	w := randVec(params.Slots(), 1, rng)
	ct := encr.Encrypt(enc.Encode(v, params.L, params.Scale))

	start = time.Now()
	prod := eval.RescaleNew(eval.MulPlainNew(ct, enc.Encode(w, params.L, params.Scale)))
	t.Logf("PCmult+Rescale: %v", time.Since(start))

	start = time.Now()
	rot := eval.RotateNew(prod, 1)
	t.Logf("Rotate: %v", time.Since(start))

	got := enc.Decode(decr.Decrypt(rot))
	slots := params.Slots()
	for i := 0; i < 100; i++ {
		want := v[(i+1)%slots] * w[(i+1)%slots]
		if math.Abs(got[i]-want) > 1e-3 {
			t.Fatalf("slot %d: got %g want %g", i, got[i], want)
		}
	}
}
