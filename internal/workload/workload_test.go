package workload

import (
	"testing"

	"fxhenn/internal/ckks"
	"fxhenn/internal/cnn"
	"fxhenn/internal/hecnn"
)

func TestImageProperties(t *testing.T) {
	img := Image(3, 32, 32, 1)
	if img.C != 3 || img.H != 32 || img.W != 32 {
		t.Fatal("shape wrong")
	}
	maxv, minv, sum := 0.0, 1.0, 0.0
	for _, v := range img.Data {
		if v > maxv {
			maxv = v
		}
		if v < minv {
			minv = v
		}
		sum += v
	}
	if maxv > 1.0001 || minv < 0 {
		t.Fatalf("values outside [0,1]: [%g, %g]", minv, maxv)
	}
	if maxv < 0.99 {
		t.Fatalf("channel not normalized: max %g", maxv)
	}
	// Structured, not constant and not saturated.
	mean := sum / float64(len(img.Data))
	if mean < 0.02 || mean > 0.9 {
		t.Fatalf("implausible mean %g", mean)
	}
}

func TestImageDeterministicAndSeedSensitive(t *testing.T) {
	a := Image(1, 16, 16, 5)
	b := Image(1, 16, 16, 5)
	c := Image(1, 16, 16, 6)
	same, diff := true, false
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
		}
		if a.Data[i] != c.Data[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different images")
	}
	if !diff {
		t.Fatal("different seeds produced identical images")
	}
}

func TestBatch(t *testing.T) {
	net := cnn.NewTinyNet()
	batch := Batch(net, 4, 10)
	if len(batch) != 4 {
		t.Fatal("batch size wrong")
	}
	for _, img := range batch {
		if img.C != net.InC || img.H != net.InH || img.W != net.InW {
			t.Fatal("batch image shape wrong")
		}
	}
}

// TestEvaluateAgreement is the accuracy-substitute integration test: over a
// batch of structured images, the encrypted pipeline must agree with the
// plaintext network on every argmax and keep tiny logit errors.
func TestEvaluateAgreement(t *testing.T) {
	params := ckks.NewParameters(8, 30, 7, 45)
	pnet := cnn.NewTinyNet()
	pnet.InitWeights(42)
	henet := hecnn.Compile(pnet, params.Slots())
	ctx := hecnn.NewContext(params, 43, henet.RotationsNeeded(params.MaxLevel()))

	batch := Batch(pnet, 5, 99)
	r, err := EvaluateAgreement(pnet, henet, ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if r.Images != 5 {
		t.Fatalf("images %d", r.Images)
	}
	if r.AgreementRate() != 1.0 {
		t.Fatalf("agreement %.2f — encrypted argmax diverged", r.AgreementRate())
	}
	if r.MaxAbsError > 1e-2 {
		t.Fatalf("max error %g", r.MaxAbsError)
	}
	if r.MeanAbsError <= 0 || r.MeanAbsError > r.MaxAbsError {
		t.Fatalf("mean error %g inconsistent with max %g", r.MeanAbsError, r.MaxAbsError)
	}
}

func TestAgreementRateEmpty(t *testing.T) {
	if (AgreementReport{}).AgreementRate() != 0 {
		t.Fatal("empty report rate")
	}
}

// TestTrainedModelEncryptedAccuracy is the accuracy-preservation test: a
// network trained to high accuracy on the synthetic quadrant task must keep
// that accuracy when evaluated under encryption.
func TestTrainedModelEncryptedAccuracy(t *testing.T) {
	pnet := cnn.NewTinyNet()
	pnet.InitWeights(5)
	train := QuadrantDataset(1, 8, 8, 200, 1)
	test := QuadrantDataset(1, 8, 8, 20, 99991)
	if _, err := pnet.Train(train, cnn.TrainConfig{
		Epochs: 10, LearningRate: 0.01, Seed: 7, LogitScale: 0.05,
	}); err != nil {
		t.Fatal(err)
	}
	plainAcc := pnet.Accuracy(test)
	if plainAcc < 0.9 {
		t.Fatalf("plaintext training failed: accuracy %.2f", plainAcc)
	}

	params := ckks.NewParameters(8, 30, 7, 45)
	henet := hecnn.Compile(pnet, params.Slots())
	ctx := hecnn.NewContext(params, 55, henet.RotationsNeeded(params.MaxLevel()))

	correct := 0
	for _, s := range test {
		logits, _ := henet.Run(ctx, s.Image)
		if cnn.Argmax(logits) == s.Label {
			correct++
		}
	}
	encAcc := float64(correct) / float64(len(test))
	if encAcc != plainAcc {
		t.Fatalf("encrypted accuracy %.2f != plaintext %.2f — precision loss flipped predictions", encAcc, plainAcc)
	}
}

func TestQuadrantDataset(t *testing.T) {
	ds := QuadrantDataset(1, 8, 8, 40, 3)
	counts := map[int]int{}
	for _, s := range ds {
		if s.Label < 0 || s.Label >= QuadrantClasses {
			t.Fatalf("bad label %d", s.Label)
		}
		counts[s.Label]++
		// The blob quadrant must hold the largest pixel.
		best, bi := 0.0, 0
		for i, v := range s.Image.Data {
			if v > best {
				best, bi = v, i
			}
		}
		y, x := bi/8, bi%8
		q := (y/4)*2 + x/4
		if q != s.Label {
			t.Fatalf("brightest pixel in quadrant %d but label %d", q, s.Label)
		}
	}
	if len(counts) != QuadrantClasses {
		t.Fatalf("only %d classes in sample", len(counts))
	}
}
