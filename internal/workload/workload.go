// Package workload generates the synthetic evaluation inputs that stand in
// for the MNIST/CIFAR-10 datasets (see DESIGN.md §1): deterministic,
// structured images — oriented strokes and Gaussian blobs rather than white
// noise, so convolutions see realistic spatial correlation — plus batch
// helpers measuring the agreement between encrypted and plaintext
// inference, the reproduction's substitute for the accuracy column the
// paper quotes from LoLa.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"fxhenn/internal/cnn"
	"fxhenn/internal/hecnn"
)

// Image synthesizes a structured (c, h, w) image: a couple of anti-aliased
// strokes plus a Gaussian blob per channel, normalized to [0, 1].
func Image(c, h, w int, seed int64) *cnn.Tensor {
	rng := rand.New(rand.NewSource(seed))
	img := cnn.NewTensor(c, h, w)
	for ch := 0; ch < c; ch++ {
		// Gaussian blob.
		cx := rng.Float64() * float64(w)
		cy := rng.Float64() * float64(h)
		sigma := 1 + rng.Float64()*float64(h)/4
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				d2 := (float64(x)-cx)*(float64(x)-cx) + (float64(y)-cy)*(float64(y)-cy)
				img.Set(ch, y, x, 0.6*math.Exp(-d2/(2*sigma*sigma)))
			}
		}
		// Two strokes: lines y = a·x + b with soft falloff.
		for s := 0; s < 2; s++ {
			a := math.Tan((rng.Float64() - 0.5) * math.Pi * 0.8)
			b := rng.Float64() * float64(h)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					dist := math.Abs(float64(y)-a*float64(x)-b) / math.Sqrt(1+a*a)
					v := img.At(ch, y, x) + 0.8*math.Exp(-dist*dist)
					img.Set(ch, y, x, v)
				}
			}
		}
		// Normalize the channel to [0, 1].
		maxv := 0.0
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if v := img.At(ch, y, x); v > maxv {
					maxv = v
				}
			}
		}
		if maxv > 0 {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					img.Set(ch, y, x, img.At(ch, y, x)/maxv)
				}
			}
		}
	}
	return img
}

// Batch generates n structured images for a network's input shape.
func Batch(net *cnn.Network, n int, seed int64) []*cnn.Tensor {
	out := make([]*cnn.Tensor, n)
	for i := range out {
		out[i] = Image(net.InC, net.InH, net.InW, seed+int64(i)*7919)
	}
	return out
}

// AgreementReport summarizes encrypted-vs-plaintext fidelity over a batch.
type AgreementReport struct {
	Images        int
	ArgmaxMatches int
	MaxAbsError   float64
	MeanAbsError  float64
}

// AgreementRate returns the fraction of images whose encrypted argmax
// matches the plaintext argmax.
func (r AgreementReport) AgreementRate() float64 {
	if r.Images == 0 {
		return 0
	}
	return float64(r.ArgmaxMatches) / float64(r.Images)
}

// EvaluateAgreement runs every image through both plaintext and encrypted
// inference and reports the fidelity. This is the reproduction's stand-in
// for dataset accuracy: with synthetic weights the absolute accuracy is
// meaningless, but the encrypted pipeline must agree with the plaintext
// network it implements. A failed encrypted evaluation (bad input shape,
// a panic inside the HE pipeline) aborts the batch with the offending
// image's index — an encrypted run that silently drops images would
// overstate agreement.
func EvaluateAgreement(pnet *cnn.Network, henet *hecnn.Network, ctx *hecnn.Context, images []*cnn.Tensor) (AgreementReport, error) {
	r := AgreementReport{Images: len(images)}
	var totalErr float64
	var count int
	for n, img := range images {
		want := pnet.Infer(img)
		got, _, err := henet.RunChecked(ctx, img)
		if err != nil {
			return r, fmt.Errorf("workload: encrypted inference on image %d: %w", n, err)
		}
		if cnn.Argmax(got) == cnn.Argmax(want) {
			r.ArgmaxMatches++
		}
		for i := range want {
			e := math.Abs(got[i] - want[i])
			totalErr += e
			count++
			if e > r.MaxAbsError {
				r.MaxAbsError = e
			}
		}
	}
	if count > 0 {
		r.MeanAbsError = totalErr / float64(count)
	}
	return r, nil
}
