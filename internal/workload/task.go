package workload

import (
	"math"
	"math/rand"

	"fxhenn/internal/cnn"
)

// Synthetic labeled task: "which quadrant holds the blob". A single
// Gaussian blob is placed in one of the four quadrants of the image; the
// label is the quadrant index. The task is easily learnable by the tiny
// HE-friendly networks, giving the reproduction a *trained* model whose
// accuracy the encrypted pipeline must preserve — the substitute for the
// paper's quoted LoLa accuracies (see DESIGN.md §1).

// QuadrantClasses is the label count of the synthetic task.
const QuadrantClasses = 4

// QuadrantSample generates one labeled image of shape (c, h, w).
func QuadrantSample(c, h, w int, seed int64) cnn.Sample {
	rng := rand.New(rand.NewSource(seed))
	label := rng.Intn(QuadrantClasses)
	img := cnn.NewTensor(c, h, w)

	// Blob center inside the labeled quadrant (with a margin).
	qy := label / 2
	qx := label % 2
	cy := float64(qy)*float64(h)/2 + float64(h)/8 + rng.Float64()*float64(h)/4
	cx := float64(qx)*float64(w)/2 + float64(w)/8 + rng.Float64()*float64(w)/4
	sigma := 0.8 + rng.Float64()*0.6

	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				d2 := (float64(x)-cx)*(float64(x)-cx) + (float64(y)-cy)*(float64(y)-cy)
				v := math.Exp(-d2 / (2 * sigma * sigma))
				// Mild background noise keeps the task from being trivial.
				v += 0.05 * rng.Float64()
				img.Set(ch, y, x, v)
			}
		}
	}
	return cnn.Sample{Image: img, Label: label}
}

// QuadrantDataset generates n labeled samples.
func QuadrantDataset(c, h, w, n int, seed int64) []cnn.Sample {
	out := make([]cnn.Sample, n)
	for i := range out {
		out[i] = QuadrantSample(c, h, w, seed+int64(i)*104729)
	}
	return out
}
