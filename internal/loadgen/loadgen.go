// Package loadgen is a deterministic open-loop load generator for the
// serving-scale curves of the artifact runner (DESIGN.md §15).
//
// Open-loop means arrivals follow a pre-computed schedule and never wait
// for earlier requests to complete: a slow server faces a growing backlog
// exactly as it would behind real independent clients, instead of the
// closed-loop artifact where N captive workers slow their own offered
// load down to whatever the server sustains. Latency is measured from
// each request's SCHEDULED arrival time, not from whenever the generator
// got around to sending it, so queueing delay inflicted by the system
// under test is charged to the system — the standard guard against
// coordinated omission.
//
// The arrival schedule is derived from a seeded PRNG, so a (seed, rate,
// n) triple names one exact workload: two runs offer byte-identical
// request sequences at identical offsets, and only the measured
// durations differ.
package loadgen

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"fxhenn/internal/telemetry"
)

// Schedule is a set of arrival offsets from the start of a run,
// ascending.
type Schedule []time.Duration

// Exponential returns n Poisson-process arrival offsets at the given
// mean rate (requests/second), deterministic in the seed. The offsets
// are the running sum of exponentially distributed inter-arrival gaps,
// the standard open-loop arrival model.
func Exponential(seed int64, rate float64, n int) Schedule {
	if n <= 0 || rate <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	s := make(Schedule, n)
	var at float64 // seconds
	for i := range s {
		at += rng.ExpFloat64() / rate
		s[i] = time.Duration(at * float64(time.Second))
	}
	return s
}

// Uniform returns n evenly spaced arrival offsets at the given rate:
// the first request fires immediately, then one every 1/rate seconds.
func Uniform(rate float64, n int) Schedule {
	if n <= 0 || rate <= 0 {
		return nil
	}
	gap := time.Duration(float64(time.Second) / rate)
	s := make(Schedule, n)
	for i := range s {
		s[i] = time.Duration(i) * gap
	}
	return s
}

// Rate returns the schedule's mean offered rate in requests/second.
func (s Schedule) Rate() float64 {
	if len(s) == 0 || s[len(s)-1] <= 0 {
		return 0
	}
	return float64(len(s)) / s[len(s)-1].Seconds()
}

// Config parameterizes one Run.
type Config struct {
	// Schedule is the arrival plan; Run fires one request per entry.
	Schedule Schedule
	// Timeout bounds each request's context (0 = no per-request bound;
	// the Run ctx still applies).
	Timeout time.Duration
	// Classify maps a request error to a small label ("busy", "timeout",
	// …) for Result.Errors. Nil classifies every error as "error".
	Classify func(error) string
}

// Result aggregates one Run.
type Result struct {
	Offered int            // requests fired (len(Schedule), minus any cut off by ctx)
	OK      int            // requests whose do() returned nil
	Errors  map[string]int // failed requests by Classify label
	Wall    time.Duration  // first scheduled arrival to last completion
	// Latency holds one observation per request, in seconds, measured
	// from the request's scheduled arrival — not its actual send — so
	// generator lateness and server queueing both count against the
	// system under test (coordinated-omission avoidance).
	Latency *telemetry.Histogram
}

// Failed returns the total number of failed requests.
func (r *Result) Failed() int {
	var n int
	for _, c := range r.Errors {
		n += c
	}
	return n
}

// Throughput returns completed requests per second of wall time.
func (r *Result) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.OK) / r.Wall.Seconds()
}

// P returns the q-quantile request latency in seconds (NaN when no
// requests completed).
func (r *Result) P(q float64) float64 {
	if r.Latency == nil {
		return math.NaN()
	}
	return r.Latency.Quantile(q)
}

// Run drives do once per schedule entry, open-loop: each request fires
// at its scheduled offset regardless of how many earlier requests are
// still in flight. Run returns after every fired request completes or
// ctx is cancelled; requests not yet fired at cancellation are dropped
// from Offered.
func Run(ctx context.Context, cfg Config, do func(context.Context) error) *Result {
	sched := append(Schedule(nil), cfg.Schedule...)
	sort.Slice(sched, func(i, j int) bool { return sched[i] < sched[j] })

	res := &Result{
		Errors:  make(map[string]int),
		Latency: telemetry.NewHistogram(nil),
	}
	classify := cfg.Classify
	if classify == nil {
		classify = func(error) string { return "error" }
	}

	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		last time.Time
	)
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	for _, offset := range sched {
		// Wait out the gap to this arrival without drifting: the target
		// is start+offset on the absolute clock, so a long previous gap
		// never delays later arrivals.
		if d := time.Until(start.Add(offset)); d > 0 {
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		res.Offered++
		scheduled := start.Add(offset)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rctx := ctx
			if cfg.Timeout > 0 {
				var cancel context.CancelFunc
				rctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
				defer cancel()
			}
			err := do(rctx)
			done := time.Now()
			res.Latency.Observe(done.Sub(scheduled).Seconds())
			mu.Lock()
			if err != nil {
				res.Errors[classify(err)]++
			} else {
				res.OK++
			}
			if done.After(last) {
				last = done
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	mu.Lock()
	if res.Offered > 0 && last.After(start) {
		res.Wall = last.Sub(start)
	}
	mu.Unlock()
	return res
}
