package loadgen

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// TestExponentialDeterministic: the same (seed, rate, n) triple yields
// the identical schedule; a different seed yields a different one.
func TestExponentialDeterministic(t *testing.T) {
	a := Exponential(7, 100, 500)
	b := Exponential(7, 100, 500)
	if len(a) != 500 {
		t.Fatalf("len = %d, want 500", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := Exponential(8, 100, 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced the same schedule")
	}
}

// TestExponentialRate: the mean offered rate converges on the requested
// rate, and offsets ascend.
func TestExponentialRate(t *testing.T) {
	s := Exponential(1, 200, 2000)
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatalf("offsets not ascending at %d", i)
		}
	}
	if r := s.Rate(); math.Abs(r-200)/200 > 0.15 {
		t.Fatalf("mean rate %.1f too far from 200", r)
	}
}

func TestUniform(t *testing.T) {
	s := Uniform(100, 5)
	want := Schedule{0, 10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond, 40 * time.Millisecond}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("offset %d = %v, want %v", i, s[i], want[i])
		}
	}
	if Uniform(0, 5) != nil || Uniform(100, 0) != nil {
		t.Fatal("degenerate schedules should be nil")
	}
}

// TestRunCountsDeterministic: with an instantaneous stub, every offered
// request completes and the OK/error split is exactly the stub's.
func TestRunCountsDeterministic(t *testing.T) {
	var n atomic.Int64
	busy := errors.New("busy")
	res := Run(context.Background(), Config{
		Schedule: Exponential(3, 5000, 200),
		Classify: func(err error) string { return err.Error() },
	}, func(context.Context) error {
		if n.Add(1)%4 == 0 {
			return busy
		}
		return nil
	})
	if res.Offered != 200 {
		t.Fatalf("Offered = %d, want 200", res.Offered)
	}
	if res.OK != 150 || res.Errors["busy"] != 50 {
		t.Fatalf("OK=%d Errors=%v, want 150/50", res.OK, res.Errors)
	}
	if res.Failed() != 50 {
		t.Fatalf("Failed = %d", res.Failed())
	}
	if got := res.Latency.Count(); got != 200 {
		t.Fatalf("latency observations = %d, want 200", got)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
}

// TestRunOpenLoop: arrivals do NOT wait for a slow in-flight request —
// with one 150ms straggler and ~40 fast requests offered over ~40ms,
// the run's wall time is dominated by the straggler, not 40×150ms as a
// closed loop would produce.
func TestRunOpenLoop(t *testing.T) {
	var n atomic.Int64
	start := time.Now()
	res := Run(context.Background(), Config{
		Schedule: Uniform(1000, 40),
	}, func(context.Context) error {
		if n.Add(1) == 1 {
			time.Sleep(150 * time.Millisecond)
		}
		return nil
	})
	elapsed := time.Since(start)
	if res.OK != 40 {
		t.Fatalf("OK = %d, want 40", res.OK)
	}
	if elapsed > time.Second {
		t.Fatalf("run serialized behind the straggler: %v", elapsed)
	}
	// The straggler's latency is charged in full.
	if max := res.Latency.Max(); max < 0.14 {
		t.Fatalf("straggler latency lost: max %.3fs", max)
	}
}

// TestRunMeasuresFromScheduledArrival: a do() that sleeps means later
// requests still launch on schedule, and every latency is at least the
// service time — measured from scheduled arrival, not send time.
func TestRunMeasuresFromScheduledArrival(t *testing.T) {
	const service = 20 * time.Millisecond
	res := Run(context.Background(), Config{
		Schedule: Uniform(500, 10),
	}, func(context.Context) error {
		time.Sleep(service)
		return nil
	})
	if res.Latency.Min() < service.Seconds()*0.9 {
		t.Fatalf("min latency %.4fs below service time", res.Latency.Min())
	}
}

// TestRunContextCancel: cancelling mid-schedule stops firing new
// requests; already-fired ones are drained and counted.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	res := Run(ctx, Config{
		Schedule: Uniform(100, 1000), // would take 10s to offer fully
	}, func(context.Context) error {
		if n.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if res.Offered >= 1000 {
		t.Fatalf("cancellation did not stop the schedule: offered %d", res.Offered)
	}
	if res.OK+res.Failed() != res.Offered {
		t.Fatalf("offered %d != completed %d", res.Offered, res.OK+res.Failed())
	}
}

// TestRunTimeoutClassified: a per-request timeout surfaces as the
// classified error, not a hang.
func TestRunTimeoutClassified(t *testing.T) {
	res := Run(context.Background(), Config{
		Schedule: Uniform(1000, 3),
		Timeout:  10 * time.Millisecond,
		Classify: func(err error) string {
			if errors.Is(err, context.DeadlineExceeded) {
				return "timeout"
			}
			return "other"
		},
	}, func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if res.Errors["timeout"] != 3 {
		t.Fatalf("Errors = %v, want 3 timeouts", res.Errors)
	}
}
