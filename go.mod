module fxhenn

go 1.22
