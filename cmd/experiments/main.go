// Command experiments regenerates the paper's tables and figures from the
// reproduced FxHENN system, printing paper-reported numbers next to modeled
// ones. See DESIGN.md §5 for the experiment index.
//
// Usage:
//
//	experiments -all
//	experiments -table 7
//	experiments -fig 9
//	experiments -ablations
//	experiments -measured mnist
package main

import (
	"flag"
	"fmt"
	"os"

	"fxhenn/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-9)")
	fig := flag.Int("fig", 0, "regenerate one figure (7-10)")
	abl := flag.Bool("ablations", false, "run the design-choice ablations")
	packing := flag.Bool("packing", false, "compare LoLa vs batched packing")
	measured := flag.String("measured", "", "run one live traced inference (tiny, tinyconv, mnist) and print the measured-vs-modeled per-layer table")
	all := flag.Bool("all", false, "regenerate everything")
	flag.Parse()

	env := experiments.NewEnv()
	w := os.Stdout

	if *all || (*table == 0 && *fig == 0 && !*abl && !*packing && *measured == "") {
		env.All(w)
		return
	}
	if *measured != "" {
		if err := env.Measured(w, *measured); err != nil {
			fmt.Fprintf(os.Stderr, "measured: %v\n", err)
			os.Exit(2)
		}
	}
	if *abl {
		env.Ablations(w)
	}
	if *packing {
		env.PackingComparison(w)
	}
	switch *table {
	case 0:
	case 1:
		env.TableI(w)
	case 2:
		env.TableII(w)
	case 3:
		env.TableIII(w)
	case 4:
		env.TableIV(w)
	case 5:
		env.TableV(w)
	case 6:
		env.TableVI(w)
	case 7:
		env.TableVII(w)
	case 8:
		env.TableVIII(w)
	case 9:
		env.TableIX(w)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %d (1-9)\n", *table)
		os.Exit(2)
	}
	switch *fig {
	case 0:
	case 7:
		env.Fig7(w)
	case 8:
		env.Fig8(w)
	case 9:
		env.Fig9(w)
	case 10:
		env.Fig10(w)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %d (7-10)\n", *fig)
		os.Exit(2)
	}
}
