// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON benchmark report, echoing the raw output through
// to stdout so it still reads like a normal bench run. It is the back
// half of `make bench`, which writes BENCH_inference.json with the
// ns/op of the per-network encrypted-inference benchmarks.
//
// With -baseline it additionally compares the fresh run against a
// committed report and exits nonzero when any benchmark present in both
// regressed by more than -regress-pct — the CI latency-regression gate.
// Benchmarks only in one of the two reports are listed but never fail
// the run, so adding a benchmark does not break CI.
//
// Usage:
//
//	go test -bench=Inference -benchtime=1x -run='^$' . | benchjson -out BENCH_inference.json
//	benchjson -out bench.json -filter '' < bench.txt   # keep every benchmark
//	benchjson -out /dev/null -baseline BENCH_inference.json -regress-pct 25 < bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"` // trimmed: no "Benchmark" prefix, no -GOMAXPROCS suffix
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// NsPerImage is the per-image cost reported by batched-inference
	// benchmarks (ReportMetric "ns/image"): ns_per_op divided by the batch
	// occupancy, the number throughput comparisons against the per-request
	// rows should use.
	NsPerImage float64 `json:"ns_per_image,omitempty"`
}

// Report is the JSON document written to -out.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_inference.json", "JSON report path")
	filter := flag.String("filter", "Inference_", "keep benchmarks whose trimmed name contains this substring (empty keeps all)")
	baseline := flag.String("baseline", "", "committed report to compare against; exit nonzero on regression (empty disables)")
	regressPct := flag.Float64("regress-pct", 25, "with -baseline: fail when ns/op exceeds the baseline by more than this percentage")
	flag.Parse()

	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		if *filter != "" && !strings.Contains(b.Name, *filter) {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	reportTracedOverhead(rep)

	if *baseline != "" {
		if !checkBaseline(rep, *baseline, *regressPct) {
			os.Exit(1)
		}
	}
}

// reportTracedOverhead prints, for every Traced benchmark whose untraced
// counterpart is in the same run (FooTraced vs Foo), the tracing
// overhead as a percentage — the traced-vs-untraced row the tracing
// docs quote. Informational only; the regression gate is -baseline.
func reportTracedOverhead(rep Report) {
	byName := make(map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b.NsPerOp
	}
	for _, b := range rep.Benchmarks {
		base, found := strings.CutSuffix(b.Name, "Traced")
		if !found || b.Name == base {
			continue
		}
		was, ok := byName[base]
		if !ok || was == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: tracing overhead %s vs %s: %.0f vs %.0f ns/op (%+.1f%%)\n",
			b.Name, base, b.NsPerOp, was, 100*(b.NsPerOp-was)/was)
	}
}

// checkBaseline compares the fresh report against the committed one and
// reports per-benchmark deltas; it returns false when any benchmark in
// both reports is slower than baseline × (1 + pct/100).
func checkBaseline(rep Report, path string, pct float64) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
		return false
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", path, err)
		return false
	}
	old := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		old[b.Name] = b.NsPerOp
	}
	ok := true
	for _, b := range rep.Benchmarks {
		was, found := old[b.Name]
		if !found || was == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %s: not in baseline, skipping\n", b.Name)
			continue
		}
		delta := 100 * (b.NsPerOp - was) / was
		if b.NsPerOp > was*(1+pct/100) {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.0f ns/op vs baseline %.0f (%+.1f%% > +%.0f%% allowed)\n",
				b.Name, b.NsPerOp, was, delta, pct)
			ok = false
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s: %.0f ns/op vs baseline %.0f (%+.1f%%)\n", b.Name, b.NsPerOp, was, delta)
	}
	return ok
}

// parseLine recognizes `BenchmarkName-8  N  12345 ns/op [B/op] [allocs/op]`.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
		case "ns/image":
			b.NsPerImage = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, seenNs
}
