// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON benchmark report, echoing the raw output through
// to stdout so it still reads like a normal bench run. It is the back
// half of `make bench`, which writes BENCH_inference.json with the
// ns/op of the per-network encrypted-inference benchmarks.
//
// Usage:
//
//	go test -bench=Inference -benchtime=1x -run='^$' . | benchjson -out BENCH_inference.json
//	benchjson -out bench.json -filter '' < bench.txt   # keep every benchmark
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"` // trimmed: no "Benchmark" prefix, no -GOMAXPROCS suffix
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the JSON document written to -out.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_inference.json", "JSON report path")
	filter := flag.String("filter", "Inference_", "keep benchmarks whose trimmed name contains this substring (empty keeps all)")
	flag.Parse()

	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		if *filter != "" && !strings.Contains(b.Name, *filter) {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parseLine recognizes `BenchmarkName-8  N  12345 ns/op [B/op] [allocs/op]`.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, seenNs
}
