// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON benchmark report, echoing the raw output through
// to stdout so it still reads like a normal bench run. It is the back
// half of `make bench`, which writes BENCH_inference.json with the
// ns/op of the per-network encrypted-inference benchmarks.
//
// With -baseline it additionally compares the fresh run against a
// committed report and exits nonzero when any benchmark present in both
// regressed by more than -regress-pct — the CI latency-regression gate.
// Benchmarks only in one of the two reports are listed but never fail
// the run, so adding a benchmark does not break CI.
//
// Repeated benchmark names on stdin (a `go test -count=N` run) collapse
// into one row per name carrying the per-metric median, so both the
// committed baseline and the gate's fresh measurement can be
// median-of-3 instead of a single noisy sample.
//
// With -in the report is loaded from an existing JSON file instead of
// parsing bench text on stdin — the path cmd/artifact's
// BENCH_loadgen.json takes through the same gates.
//
// With -history the report is additionally compared against the rolling
// JSONL history at that path and then appended to it: each line is one
// prior report, the reference value per benchmark is the median ns/op
// over the last -history-window entries that contain it, and the run
// fails when the fresh value exceeds that median by more than
// -regress-pct. The median absorbs single noisy runs in either
// direction, which a fixed committed baseline cannot (DESIGN.md §15).
//
// Usage:
//
//	go test -bench=Inference -benchtime=1x -run='^$' . | benchjson -out BENCH_inference.json
//	benchjson -out bench.json -filter '' < bench.txt   # keep every benchmark
//	benchjson -out /dev/null -baseline BENCH_inference.json -regress-pct 25 < bench.txt
//	benchjson -in artifact/BENCH_loadgen.json -out /dev/null -baseline BENCH_loadgen.json -regress-pct 100
//	benchjson -in artifact/BENCH_loadgen.json -out /dev/null -history loadgen-history.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"` // trimmed: no "Benchmark" prefix, no -GOMAXPROCS suffix
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// NsPerImage is the per-image cost reported by batched-inference
	// benchmarks (ReportMetric "ns/image"): ns_per_op divided by the batch
	// occupancy, the number throughput comparisons against the per-request
	// rows should use.
	NsPerImage float64 `json:"ns_per_image,omitempty"`
}

// Report is the JSON document written to -out.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_inference.json", "JSON report path")
	in := flag.String("in", "", "load the report from this JSON file instead of parsing bench text on stdin (empty reads stdin)")
	filter := flag.String("filter", "Inference_,Kernel_", "keep benchmarks whose trimmed name contains any of these comma-separated substrings (empty keeps all; ignored with -in)")
	baseline := flag.String("baseline", "", "committed report to compare against; exit nonzero on regression (empty disables)")
	regressPct := flag.Float64("regress-pct", 25, "with -baseline/-history: fail when ns/op exceeds the reference by more than this percentage")
	history := flag.String("history", "", "rolling JSONL history: compare against the median of the last -history-window entries, then append this run (empty disables)")
	historyWindow := flag.Int("history-window", 5, "with -history: how many most-recent entries the median is taken over")
	flag.Parse()

	rep := Report{Benchmarks: []Benchmark{}}
	if *in != "" {
		data, err := os.ReadFile(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -in: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -in %s: %v\n", *in, err)
			os.Exit(1)
		}
	} else {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			if !matchFilter(b.Name, *filter) {
				continue
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
			os.Exit(1)
		}
	}
	rep.Benchmarks = mergeDuplicates(rep.Benchmarks)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	reportTracedOverhead(rep)

	ok := true
	if *baseline != "" && !checkBaseline(rep, *baseline, *regressPct) {
		ok = false
	}
	if *history != "" && !checkAndAppendHistory(rep, *history, *historyWindow, *regressPct) {
		ok = false
	}
	if !ok {
		os.Exit(1)
	}
}

// mergeDuplicates collapses repeated benchmark names (a `-count=N` run
// emits each benchmark N times) into one row per name carrying the
// per-metric median, in first-appearance order. One noisy sample on a
// shared host then moves neither the committed baseline nor the CI
// gate's fresh measurement — both sides run the gated rows with
// -count=3 and compare median against median.
func mergeDuplicates(bs []Benchmark) []Benchmark {
	var order []string
	groups := map[string][]Benchmark{}
	for _, b := range bs {
		if _, ok := groups[b.Name]; !ok {
			order = append(order, b.Name)
		}
		groups[b.Name] = append(groups[b.Name], b)
	}
	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		g := groups[name]
		if len(g) == 1 {
			out = append(out, g[0])
			continue
		}
		med := func(f func(Benchmark) float64) float64 {
			vals := make([]float64, len(g))
			for i, b := range g {
				vals[i] = f(b)
			}
			return median(vals)
		}
		out = append(out, Benchmark{
			Name:        name,
			Iterations:  g[0].Iterations,
			NsPerOp:     med(func(b Benchmark) float64 { return b.NsPerOp }),
			BytesPerOp:  int64(med(func(b Benchmark) float64 { return float64(b.BytesPerOp) })),
			AllocsPerOp: int64(med(func(b Benchmark) float64 { return float64(b.AllocsPerOp) })),
			NsPerImage:  med(func(b Benchmark) float64 { return b.NsPerImage }),
		})
	}
	return out
}

// matchFilter reports whether name contains any of the comma-separated
// substrings in filter; an empty filter (or one of only empty fields)
// keeps everything.
func matchFilter(name, filter string) bool {
	if filter == "" {
		return true
	}
	any := false
	for _, f := range strings.Split(filter, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		any = true
		if strings.Contains(name, f) {
			return true
		}
	}
	return !any
}

// checkAndAppendHistory compares the fresh report against the median
// ns/op of the last window entries in the JSONL history, then appends
// the report as a new line regardless of outcome (a regressed run is
// still data). Benchmarks with no history are reported and skipped, so
// the first runs of a new row never fail. Returns false on a regression
// beyond pct or an unusable history file.
func checkAndAppendHistory(rep Report, path string, window int, pct float64) bool {
	var hist []Report
	if data, err := os.ReadFile(path); err == nil {
		for i, line := range strings.Split(string(data), "\n") {
			if strings.TrimSpace(line) == "" {
				continue
			}
			var r Report
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: history %s line %d: %v\n", path, i+1, err)
				return false
			}
			hist = append(hist, r)
		}
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "benchjson: history: %v\n", err)
		return false
	}
	if window < 1 {
		window = 1
	}

	ok := true
	for _, b := range rep.Benchmarks {
		var vals []float64
		for i := len(hist) - 1; i >= 0 && len(vals) < window; i-- {
			for _, h := range hist[i].Benchmarks {
				if h.Name == b.Name && h.NsPerOp > 0 {
					vals = append(vals, h.NsPerOp)
					break
				}
			}
		}
		if len(vals) == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %s: no history yet, skipping\n", b.Name)
			continue
		}
		med := median(vals)
		delta := 100 * (b.NsPerOp - med) / med
		if b.NsPerOp > med*(1+pct/100) {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.0f ns/op vs median-of-%d %.0f (%+.1f%% > +%.0f%% allowed)\n",
				b.Name, b.NsPerOp, len(vals), med, delta, pct)
			ok = false
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s: %.0f ns/op vs median-of-%d %.0f (%+.1f%%)\n",
			b.Name, b.NsPerOp, len(vals), med, delta)
	}

	line, err := json.Marshal(rep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: history append: %v\n", err)
		return false
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: history append: %v\n", err)
		return false
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: history append: %v\n", err)
		return false
	}
	fmt.Fprintf(os.Stderr, "benchjson: appended run %d to %s\n", len(hist)+1, path)
	return ok
}

// median returns the middle value (mean of the two middles for even n).
// vals is mutated by sorting.
func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// reportTracedOverhead prints, for every Traced benchmark whose untraced
// counterpart is in the same run (FooTraced vs Foo), the tracing
// overhead as a percentage — the traced-vs-untraced row the tracing
// docs quote. Informational only; the regression gate is -baseline.
func reportTracedOverhead(rep Report) {
	byName := make(map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b.NsPerOp
	}
	for _, b := range rep.Benchmarks {
		base, found := strings.CutSuffix(b.Name, "Traced")
		if !found || b.Name == base {
			continue
		}
		was, ok := byName[base]
		if !ok || was == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: tracing overhead %s vs %s: %.0f vs %.0f ns/op (%+.1f%%)\n",
			b.Name, base, b.NsPerOp, was, 100*(b.NsPerOp-was)/was)
	}
}

// checkBaseline compares the fresh report against the committed one and
// reports per-benchmark deltas; it returns false when any benchmark in
// both reports is slower than baseline × (1 + pct/100).
func checkBaseline(rep Report, path string, pct float64) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
		return false
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", path, err)
		return false
	}
	old := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		old[b.Name] = b.NsPerOp
	}
	ok := true
	for _, b := range rep.Benchmarks {
		was, found := old[b.Name]
		if !found || was == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %s: not in baseline, skipping\n", b.Name)
			continue
		}
		delta := 100 * (b.NsPerOp - was) / was
		if b.NsPerOp > was*(1+pct/100) {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.0f ns/op vs baseline %.0f (%+.1f%% > +%.0f%% allowed)\n",
				b.Name, b.NsPerOp, was, delta, pct)
			ok = false
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s: %.0f ns/op vs baseline %.0f (%+.1f%%)\n", b.Name, b.NsPerOp, was, delta)
	}
	return ok
}

// parseLine recognizes `BenchmarkName-8  N  12345 ns/op [B/op] [allocs/op]`.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
		case "ns/image":
			b.NsPerImage = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, seenNs
}
