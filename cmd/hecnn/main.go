// Command hecnn runs a functional homomorphic CNN inference end to end:
// it packs and encrypts a synthetic image, evaluates every layer on real
// RNS-CKKS ciphertexts, decrypts the logits, and checks them against
// plaintext inference — the correctness ground truth behind the simulated
// accelerator.
//
// Usage:
//
//	hecnn -net tiny          # reduced geometry, sub-second
//	hecnn -net tinyconv      # reduced two-convolution network
//	hecnn -net mnist         # full FxHENN-MNIST at N=8192 (takes ~1 min)
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"fxhenn/internal/ckks"
	"fxhenn/internal/cnn"
	"fxhenn/internal/hecnn"
	"fxhenn/internal/workload"
)

func main() {
	netName := flag.String("net", "tiny", "network: tiny, tinyconv or mnist")
	seed := flag.Int64("seed", 1, "weight/input seed")
	batch := flag.Int("batch", 0, "also evaluate encrypted-vs-plaintext agreement over a batch")
	flag.Parse()

	var (
		pnet   *cnn.Network
		params ckks.Parameters
	)
	switch *netName {
	case "tiny":
		pnet = cnn.NewTinyNet()
		params = ckks.NewParameters(8, 30, 7, 45)
	case "tinyconv":
		pnet = cnn.NewTinyConvNet()
		params = ckks.NewParameters(8, 30, 7, 45)
	case "mnist":
		pnet = cnn.NewMNISTNet()
		params = ckks.ParamsMNIST()
	default:
		fmt.Fprintf(os.Stderr, "unknown network %q\n", *netName)
		os.Exit(2)
	}
	pnet.InitWeights(*seed)
	fmt.Printf("network: %s, parameters: %v\n", pnet.Name, params)

	net := hecnn.Compile(pnet, params.Slots())
	rots := net.RotationsNeeded(params.MaxLevel())
	fmt.Printf("compiled: %d HE layers, %d rotation keys needed\n", len(net.Layers), len(rots))

	start := time.Now()
	ctx := hecnn.NewContext(params, *seed+100, rots)
	fmt.Printf("key generation: %v\n", time.Since(start))

	img := cnn.NewTensor(pnet.InC, pnet.InH, pnet.InW)
	rng := rand.New(rand.NewSource(*seed + 7))
	for i := range img.Data {
		img.Data[i] = rng.Float64()
	}
	want := pnet.Infer(img)

	start = time.Now()
	got, rec := net.Run(ctx, img)
	elapsed := time.Since(start)

	fmt.Printf("encrypted inference: %v (software CKKS, not the FPGA model)\n", elapsed)
	fmt.Printf("HE operations: %d total, %d KeySwitch\n", rec.TotalHOPs(), rec.TotalKeySwitches())
	for _, l := range rec.Layers {
		fmt.Printf("  %-6s %5d HOPs  %5d KS\n", l.Layer, l.HOPs(), l.KeySwitches())
	}

	worst := 0.0
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > worst {
			worst = d
		}
		fmt.Printf("logit %d: encrypted %+.6f  plaintext %+.6f\n", i, got[i], want[i])
	}
	fmt.Printf("max |error| = %.2g; argmax match: %v\n", worst,
		cnn.Argmax(got) == cnn.Argmax(want))
	if worst > 1e-2 || cnn.Argmax(got) != cnn.Argmax(want) {
		fmt.Fprintln(os.Stderr, "FAILED: encrypted inference diverged from plaintext")
		os.Exit(1)
	}
	fmt.Println("OK: encrypted inference matches plaintext")

	if *batch > 0 {
		fmt.Printf("\nbatch agreement over %d structured images...\n", *batch)
		r, err := workload.EvaluateAgreement(pnet, net, ctx, workload.Batch(pnet, *batch, *seed+1000))
		if err != nil {
			fmt.Fprintln(os.Stderr, "FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("argmax agreement: %d/%d (%.0f%%), max |error| %.2g, mean %.2g\n",
			r.ArgmaxMatches, r.Images, 100*r.AgreementRate(), r.MaxAbsError, r.MeanAbsError)
		if r.AgreementRate() < 1 {
			os.Exit(1)
		}
	}
}
