// Command artifact is the one-command paper-artifact runner: it re-runs
// the full FxHENN reproduction — every table and figure of the paper's
// evaluation, regenerated from the calibrated models on both boards —
// and the beyond-paper open-loop serving curves, and emits everything as
// a versioned bundle:
//
//	artifact/csv/<slug>.csv    one RFC-4180 CSV per experiment
//	artifact/tables.md         all tables as markdown
//	artifact/tables.tex        all tables as LaTeX environments
//	artifact/MANIFEST.json     schema version, mode, slug list
//	artifact/loadgen.md        the measured serving curves
//	artifact/csv/loadgen-*.csv the same curves as CSV
//	artifact/BENCH_loadgen.json  benchjson-compatible latency rows
//
// The paper tables are deterministic (model-derived, no wall-clock), so
// the same binary also owns EXPERIMENTS.md: table bodies in that
// document live between `<!-- artifact:<slug> -->` markers, and
//
//	go run ./cmd/artifact -update-experiments   rewrites them in place
//	go run ./cmd/artifact -check                exits 1 when they drifted
//
// A tier-1 test (internal/artifact drift test) runs the -check logic on
// every `go test ./...`, so committed docs cannot silently diverge from
// the code that generates them. The serving curves are wall-clock
// measurements and are deliberately outside the drift check; compare
// them across runs with
//
//	go run ./cmd/benchjson -in artifact/BENCH_loadgen.json -baseline BENCH_loadgen.json
//	go run ./cmd/benchjson -in artifact/BENCH_loadgen.json -history loadgen-history.jsonl
//
// Modes: -mode quick (default; seconds of load per grid point) and
// -mode full (larger grids and request counts). -skip-serving emits the
// deterministic bundle only. `make artifact` wraps the common
// invocation; see ARTIFACT.md for the guided tour.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fxhenn/internal/artifact"
	"fxhenn/internal/experiments"
)

func main() {
	mode := flag.String("mode", "quick", "quick or full: sizes the measured serving grids")
	out := flag.String("out", "artifact", "bundle output directory")
	seed := flag.Int64("seed", 1, "seed for arrival schedules and serving key ceremony")
	expPath := flag.String("experiments", "EXPERIMENTS.md", "path to the marker-bearing experiments document")
	update := flag.Bool("update-experiments", false, "rewrite the generated table bodies in -experiments, then exit")
	check := flag.Bool("check", false, "verify -experiments matches a fresh regeneration, exit 1 on drift, then exit")
	skipServing := flag.Bool("skip-serving", false, "emit the deterministic bundle only; skip the measured load-generator curves")
	flag.Parse()

	if *mode != "quick" && *mode != "full" {
		fmt.Fprintf(os.Stderr, "artifact: unknown -mode %q (want quick or full)\n", *mode)
		os.Exit(2)
	}

	env := experiments.NewEnv()

	if *update || *check {
		doc, err := os.ReadFile(*expPath)
		if err != nil {
			fatal(err)
		}
		if *check {
			drifted, err := artifact.Drift(doc, env)
			if err != nil {
				fatal(err)
			}
			if len(drifted) > 0 {
				fmt.Fprintf(os.Stderr, "artifact: %s has drifted from the generators: %v\n", *expPath, drifted)
				fmt.Fprintf(os.Stderr, "artifact: run `go run ./cmd/artifact -update-experiments` and commit the result\n")
				os.Exit(1)
			}
			fmt.Printf("artifact: %s is current (%d generated tables)\n", *expPath, len(experiments.Catalog()))
			return
		}
		fresh, err := artifact.RegenerateDoc(doc, env)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*expPath, fresh, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("artifact: regenerated %d table bodies in %s\n", len(experiments.Catalog()), *expPath)
		return
	}

	if err := artifact.WriteBundle(env, *out, *mode); err != nil {
		fatal(err)
	}
	fmt.Printf("artifact: wrote %d paper tables to %s (csv/, tables.md, tables.tex)\n",
		len(experiments.Catalog()), *out)

	if *skipServing {
		return
	}

	opt := artifact.ServingOptions{Mode: *mode, Seed: *seed, Log: os.Stdout}
	fmt.Printf("artifact: measuring serving curves (mode=%s, seed=%d) — throughput vs batch size\n", *mode, *seed)
	batch, err := artifact.ThroughputCurve(opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("artifact: queue depth vs latency percentiles\n")
	queue, err := artifact.QueueCurve(opt)
	if err != nil {
		fatal(err)
	}

	bt := artifact.CurveTable("Throughput vs cross-request batch size (tiny net, open-loop)", batch)
	qt := artifact.CurveTable("Admission-queue depth vs latency percentiles (tiny net, open-loop)", queue)
	md, err := os.Create(filepath.Join(*out, "loadgen.md"))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(md, "# Serving-scale curves (measured)\n\n")
	fmt.Fprintf(md, "Machine-dependent wall-clock measurements — see DESIGN.md §15 for\n")
	fmt.Fprintf(md, "the methodology and ARTIFACT.md for interpretation.\n\n## %s\n\n", bt.Title)
	bt.RenderMarkdown(md)
	fmt.Fprintf(md, "\n## %s\n\n", qt.Title)
	qt.RenderMarkdown(md)
	md.Close()

	bcsv, err := os.Create(filepath.Join(*out, "csv", "loadgen-batch.csv"))
	if err != nil {
		fatal(err)
	}
	bt.RenderCSV(bcsv)
	bcsv.Close()
	qcsv, err := os.Create(filepath.Join(*out, "csv", "loadgen-queue.csv"))
	if err != nil {
		fatal(err)
	}
	qt.RenderCSV(qcsv)
	qcsv.Close()

	rep := artifact.BenchRows(batch, queue)
	benchPath := filepath.Join(*out, "BENCH_loadgen.json")
	if err := artifact.WriteBenchReport(rep, benchPath); err != nil {
		fatal(err)
	}
	fmt.Printf("artifact: wrote %d loadgen rows to %s\n", len(rep.Benchmarks), benchPath)
	fmt.Printf("artifact: done — bundle in %s/\n", *out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "artifact: %v\n", err)
	os.Exit(1)
}
