// Command fxhenn is the framework CLI: given an HE-CNN model and a target
// FPGA device it runs design space exploration and emits the generated
// accelerator design — the modeled latency, the module instance plan, the
// per-layer breakdown and the HLS directives (the paper's Fig. 1 flow).
//
// Usage:
//
//	fxhenn -model mnist -device ACU9EG
//	fxhenn -model cifar10 -device ACU15EG -directives -layers -modules
//	fxhenn -model mnist -profile derived
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fxhenn/internal/accel"
	"fxhenn/internal/cnn"
	"fxhenn/internal/fpga"
	"fxhenn/internal/hecnn"
	"fxhenn/internal/profile"
	"fxhenn/internal/report"
)

func main() {
	model := flag.String("model", "mnist", "HE-CNN model: mnist or cifar10")
	device := flag.String("device", "ACU9EG", "target FPGA: ACU9EG or ACU15EG")
	src := flag.String("profile", "paper", "workload profile source: paper or derived")
	directives := flag.Bool("directives", false, "print the generated HLS directives")
	layers := flag.Bool("layers", false, "print the per-layer breakdown")
	modules := flag.Bool("modules", false, "print the module instance plan")
	asJSON := flag.Bool("json", false, "emit the full design as JSON")
	flag.Parse()

	dev, err := fpga.DeviceByName(*device)
	if err != nil {
		fatal(err)
	}
	p, err := workload(*model, *src)
	if err != nil {
		fatal(err)
	}

	design, err := accel.Generate(p, dev)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		raw, err := json.Marshal(design)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(raw)
		fmt.Println()
		return
	}
	fmt.Println(design.Summary())
	fmt.Printf("modeled energy per inference: %.2f J (TDP %.0f W)\n",
		design.EnergyJoules(), dev.TDPWatts)

	if *layers {
		t := &report.Table{
			Title:   "Per-layer breakdown",
			Headers: []string{"layer", "kind", "level", "latency s", "BRAM blocks", "DSP", "off-chip X"},
		}
		for _, r := range design.PerLayer() {
			t.AddRow(r.Name, r.Kind, report.I(r.Level), report.F(r.Seconds),
				report.I(r.BRAM), report.I(r.DSP), report.F(r.OffchipX))
		}
		t.Render(os.Stdout)
	}
	if *modules {
		t := &report.Table{
			Title:   "Module instance plan",
			Headers: []string{"module", "instance", "nc_NTT", "intra", "DSP", "used by"},
		}
		for _, mi := range design.ModulePlan() {
			t.AddRow(mi.Op.String(), report.I(mi.Index), report.I(mi.NcNTT),
				report.I(mi.Intra), report.I(mi.DSP), fmt.Sprint(mi.UsedBy))
		}
		t.Render(os.Stdout)
	}
	if *directives {
		fmt.Println()
		for _, d := range design.HLSDirectives() {
			fmt.Println(d)
		}
	}
}

func workload(model, src string) (*profile.Network, error) {
	switch model + "/" + src {
	case "mnist/paper":
		return profile.PaperMNIST(), nil
	case "cifar10/paper":
		return profile.PaperCIFAR10(), nil
	case "mnist/derived":
		net := hecnn.Compile(cnn.NewMNISTNet(), 4096)
		return profile.FromRecorder("ours-MNIST", net.Count(7), 13, 7, 30, 128), nil
	case "cifar10/derived":
		net := hecnn.Compile(cnn.NewCIFAR10Net(), 8192)
		return profile.FromRecorder("ours-CIFAR10", net.Count(7), 14, 7, 36, 192), nil
	default:
		return nil, fmt.Errorf("unknown model/profile %q/%q", model, src)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fxhenn:", err)
	os.Exit(1)
}
