// Command mlaas-server runs the hardened MLaaS inference server on a TCP
// listener with flag-configurable limits: concurrency slots, an optional
// admission queue (-queue-depth) where bursts wait out saturation instead
// of bouncing busy, per-I/O deadlines, and a total per-request budget.
// SIGINT/SIGTERM triggers a graceful drain — in-flight inferences
// complete, new connections are refused with a typed shutting-down
// status, and the drop count is reported if the drain deadline expires.
//
// Serve-path caching: the server pre-encodes every weight/bias plaintext
// at the exact levels and scales the compiled plan consumes, so
// steady-state requests perform zero encodings; -cache-bytes bounds the
// resident cache (0 auto-sizes it from the compiled operand set so even
// the BSGS diagonal set fits, negative disables it).
//
// Parallelism: -workers sizes the shared evaluation worker pool (0 =
// GOMAXPROCS, 1 = serial; results are bit-identical either way),
// -hoist compiles KS layers to serve each rotation ladder from one shared
// keyswitch decomposition, and -bsgs compiles linear layers as
// baby-step/giant-step diagonal transforms (ladder fallback where BSGS
// would lose).
//
// The reproduction keeps key generation in-process (the demo client and
// server share a key ceremony at startup), so -demo N serves N local
// client inferences and then drains; without -demo the server runs until
// a signal arrives.
//
// Batched serving: -batch-size N coalesces up to N concurrent requests
// into one position-major CryptoNets-style evaluation on a small derived
// ring (one ciphertext per tensor position, slot b = request b), with
// -batch-window bounding how long the oldest request waits for
// co-travellers; a lone request flushes as a batch of one. With -demo the
// demo inferences run concurrently so the scheduler actually batches.
//
// Telemetry: -metrics-addr serves the metrics registry (Prometheus text
// at /metrics, JSON at /metrics.json) plus net/http/pprof under
// /debug/pprof/; -slow-threshold enables the structured slow-request log
// with its per-layer breakdown; -digest-interval prints a periodic
// one-line operational digest (req/s, evaluate p50/p99, busy refusals).
//
// Tracing: -trace-ring N attaches a tail-sampling flight recorder
// keeping the last N error/slow/shed/degraded traces (plus a
// -trace-sample fraction of healthy ones), served as JSON at
// /debug/traces on the metrics mux; -trace-log appends every kept trace
// to a JSONL file. Wire-propagated trace contexts from traced clients
// stitch into the recorded spans; with tracing off the wire protocol
// and the serve path are byte-identical to the untraced build.
//
// Resilience: -shed-ewma enables deadline-aware load shedding — the
// server tracks an EWMA of evaluation latency and refuses requests whose
// projected completion already overshoots their budget, attaching a
// retry-after-ms hint to every busy refusal so clients back off for a
// useful interval instead of guessing. -health-addr serves the
// /healthz + /readyz pair on its own listener (both are also mounted on
// the metrics mux when -metrics-addr is set). -endpoints takes a
// comma-separated list of extra replica addresses; the demo client then
// drives InferHedged across this server plus those replicas — per-replica
// circuit breakers, in-round failover, and latency-triggered hedging —
// with CRC frame checking enabled.
//
// Usage:
//
//	mlaas-server -addr 127.0.0.1:7100 -max-concurrent 4
//	mlaas-server -demo 3 -io-timeout 5s
//	mlaas-server -workers 8 -hoist -demo 3
//	mlaas-server -batch-size 8 -batch-window 50ms -demo 8
//	mlaas-server -metrics-addr 127.0.0.1:7190 -slow-threshold 5s -digest-interval 30s
//	mlaas-server -shed-ewma 0.3 -queue-depth 8 -health-addr 127.0.0.1:7191
//	mlaas-server -demo 3 -endpoints 10.0.0.2:7100,10.0.0.3:7100
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"fxhenn/internal/ckks"
	"fxhenn/internal/cnn"
	"fxhenn/internal/hecnn"
	"fxhenn/internal/mlaas"
	"fxhenn/internal/registry"
	"fxhenn/internal/telemetry"
)

// modelsFor returns the standard catalog when multi-tenant serving is
// enabled; Config.Models must stay nil otherwise.
func modelsFor(reg *registry.Registry) mlaas.ModelBuilder {
	if reg == nil {
		return nil
	}
	return mlaas.StandardCatalog()
}

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	netName := flag.String("net", "tiny", "network: tiny, tinyconv or mnist")
	seed := flag.Int64("seed", 1, "weight/key seed")
	maxConcurrent := flag.Int("max-concurrent", 4, "evaluation slots before requests are refused busy")
	queueDepth := flag.Int("queue-depth", 0, "admission queue: requests beyond the evaluation slots wait here, up to their budget, before busy (0 = fail fast)")
	cacheBytes := flag.Int64("cache-bytes", 0, "byte budget for the encoded-weight plaintext cache (0 = auto-size from the compiled operand set, negative disables caching)")
	workers := flag.Int("workers", 0, "evaluation worker pool size shared by all requests (0 = GOMAXPROCS, 1 = serial)")
	hoist := flag.Bool("hoist", false, "compile KS layers with hoisted rotations (shared keyswitch decompositions)")
	bsgs := flag.Bool("bsgs", false, "compile linear layers as BSGS diagonal transforms (baby-step/giant-step rotations; falls back to the ladder where it loses)")
	ioTimeout := flag.Duration("io-timeout", 30*time.Second, "rolling per-read/write deadline")
	requestBudget := flag.Duration("request-budget", 2*time.Minute, "total wall-clock budget per request")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	demo := flag.Int("demo", 0, "serve N in-process demo inferences, then drain and exit")
	batchSize := flag.Int("batch-size", 0, "enable cross-request batched serving: coalesce up to this many concurrent requests into one position-major evaluation (0 disables)")
	batchWindow := flag.Duration("batch-window", 20*time.Millisecond, "how long the oldest batched request waits for co-travellers before the batch flushes anyway")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /debug/pprof/ on this address (empty disables)")
	slowThreshold := flag.Duration("slow-threshold", 0, "log requests slower than this with their per-layer breakdown (0 disables)")
	digestInterval := flag.Duration("digest-interval", 0, "print a one-line telemetry digest at this interval (0 disables)")
	shedEWMA := flag.Float64("shed-ewma", 0, "EWMA smoothing factor in (0,1] for deadline-aware load shedding; busy refusals then carry retry-after-ms hints (0 disables)")
	traceRing := flag.Int("trace-ring", 0, "flight recorder capacity: keep this many error/slow/shed/degraded traces (and as many sampled healthy ones) for /debug/traces (0 disables tracing)")
	traceSample := flag.Float64("trace-sample", 1, "probability a healthy trace is kept by the flight recorder (flagged traces are always kept)")
	traceLog := flag.String("trace-log", "", "append every kept trace as one JSON line to this file (empty disables; requires -trace-ring)")
	healthAddr := flag.String("health-addr", "", "serve /healthz and /readyz on this address (empty disables; health is also mounted on -metrics-addr)")
	endpoints := flag.String("endpoints", "", "comma-separated extra replica addresses; the demo client hedges and fails over across this server plus these (empty = single-endpoint retry demo)")
	registryPath := flag.String("registry", "", "tenant registry JSON file: enable multi-tenant serving with per-tenant models, keys, quotas and batch domains from this on-disk registry (empty = single-tenant)")
	flag.Parse()

	var (
		pnet   *cnn.Network
		params ckks.Parameters
	)
	switch *netName {
	case "tiny":
		pnet = cnn.NewTinyNet()
		params = ckks.NewParameters(8, 30, 7, 45)
	case "tinyconv":
		pnet = cnn.NewTinyConvNet()
		params = ckks.NewParameters(8, 30, 7, 45)
	case "mnist":
		pnet = cnn.NewMNISTNet()
		params = ckks.ParamsMNIST()
	default:
		fmt.Fprintf(os.Stderr, "unknown network %q\n", *netName)
		os.Exit(2)
	}
	pnet.InitWeights(*seed)
	henet := hecnn.CompileWith(pnet, params.Slots(), hecnn.Options{Hoist: *hoist, BSGS: *bsgs})

	// Key ceremony: the secret key stays with the client role; the server
	// receives only evaluation keys.
	kg := ckks.NewKeyGenerator(params, *seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rtk := kg.GenRotationKeys(sk, henet.RotationsNeeded(params.MaxLevel()), false)

	// Batched serving: the batch path runs on its own ring — the smallest
	// one whose slots cover the batch size — with its own key ceremony.
	// The batch secret key stays with the client role too.
	var (
		batchCfg *mlaas.BatchConfig
		bparams  ckks.Parameters
		bnet     *hecnn.BatchedNetwork
		bpk      *ckks.PublicKey
		bsk      *ckks.SecretKey
	)
	if *batchSize > 0 {
		var err error
		bparams, err = hecnn.BatchedParams(params, *batchSize)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batch params: %v\n", err)
			os.Exit(2)
		}
		bnet, err = hecnn.CompileBatched(pnet, bparams.Slots())
		if err != nil {
			fmt.Fprintf(os.Stderr, "batch compile: %v\n", err)
			os.Exit(2)
		}
		bkg := ckks.NewKeyGenerator(bparams, *seed+1)
		bsk = bkg.GenSecretKey()
		bpk = bkg.GenPublicKey(bsk)
		batchCfg = &mlaas.BatchConfig{
			Params:     bparams,
			Net:        bnet,
			Rlk:        bkg.GenRelinearizationKey(bsk),
			Rtk:        bkg.GenRotationKeys(bsk, hecnn.BatchRotations(*batchSize), false),
			Size:       *batchSize,
			Window:     *batchWindow,
			CacheBytes: *cacheBytes,
		}
	}

	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
	}
	var flight *telemetry.FlightRecorder
	if *traceRing > 0 {
		fcfg := telemetry.FlightConfig{Capacity: *traceRing, SampleRate: *traceSample}
		if *traceLog != "" {
			f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace log: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			fcfg.Log = f
		}
		flight = telemetry.NewFlightRecorder(fcfg)
	}
	// Multi-tenant serving: tenants resolve lazily from the on-disk
	// registry through the standard model catalog; untenanted requests
	// still hit the single-tenant network configured above.
	var tenantReg *registry.Registry
	if *registryPath != "" {
		store, err := registry.OpenFileStore(*registryPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "registry: %v\n", err)
			os.Exit(1)
		}
		tenantReg = registry.New(store)
	}

	server := mlaas.NewServerWithConfig(params, henet, rlk, rtk, mlaas.Config{
		MaxConcurrent:        *maxConcurrent,
		QueueDepth:           *queueDepth,
		CacheBytes:           *cacheBytes,
		IOTimeout:            *ioTimeout,
		RequestBudget:        *requestBudget,
		Workers:              *workers,
		Metrics:              reg,
		SlowRequestThreshold: *slowThreshold,
		ShedEWMA:             *shedEWMA,
		Batch:                batchCfg,
		Flight:               flight,
		Registry:             tenantReg,
		Models:               modelsFor(tenantReg),
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mlaas-server: %s on %s (slots=%d workers=%d io-timeout=%v budget=%v)\n",
		pnet.Name, l.Addr(), *maxConcurrent, server.PoolStats().Workers, *ioTimeout, *requestBudget)
	if batchCfg != nil {
		fmt.Printf("mlaas-server: batched serving on logN=%d ring (batch-size=%d batch-window=%v)\n",
			bparams.LogN, *batchSize, *batchWindow)
	}
	if tenantReg != nil {
		recs, err := tenantReg.List()
		if err != nil {
			fmt.Fprintf(os.Stderr, "registry list: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("mlaas-server: multi-tenant serving from registry %s (%d tenants)\n",
			*registryPath, len(recs))
	}

	if reg != nil {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("mlaas-server: metrics and pprof on http://%s/metrics\n", ml.Addr())
		mux := telemetry.NewMux(reg)
		server.RegisterHealth(mux)
		if flight != nil {
			mux.Handle("/debug/traces", flight.Handler())
			fmt.Printf("mlaas-server: flight recorder on http://%s/debug/traces (ring=%d sample=%g)\n",
				ml.Addr(), *traceRing, *traceSample)
		}
		go func() {
			if err := http.Serve(ml, mux); err != nil {
				fmt.Fprintf(os.Stderr, "mlaas-server: metrics server stopped: %v\n", err)
			}
		}()
	}
	if *healthAddr != "" {
		hl, err := net.Listen("tcp", *healthAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "health listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("mlaas-server: health on http://%s/readyz\n", hl.Addr())
		hmux := http.NewServeMux()
		server.RegisterHealth(hmux)
		go func() {
			if err := http.Serve(hl, hmux); err != nil {
				fmt.Fprintf(os.Stderr, "mlaas-server: health server stopped: %v\n", err)
			}
		}()
	}

	digestStop := make(chan struct{})
	defer close(digestStop)
	go server.RunDigest(os.Stdout, *digestInterval, digestStop)

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(l) }()

	if *demo > 0 {
		switch {
		case batchCfg != nil:
			runBatchedDemo(bparams, pnet, bnet, bpk, bsk, l.Addr().String(), *demo)
		case *endpoints != "":
			runHedgedDemo(params, pnet, henet, pk, sk,
				append([]string{l.Addr().String()}, strings.Split(*endpoints, ",")...), *demo)
		default:
			runDemo(params, pnet, henet, pk, sk, l.Addr().String(), *demo)
		}
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		select {
		case s := <-sig:
			fmt.Printf("mlaas-server: received %v, draining\n", s)
		case err := <-serveErr:
			fmt.Fprintf(os.Stderr, "mlaas-server: serve failed: %v\n", err)
			os.Exit(1)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := server.Shutdown(ctx); err != nil {
		st := server.Stats()
		fmt.Fprintf(os.Stderr, "mlaas-server: drain incomplete: %v (dropped=%d)\n", err, st.Dropped)
		os.Exit(1)
	}
	st := server.Stats()
	fmt.Printf("mlaas-server: drained; served=%d rejected=%d bad=%d panics=%d dropped=%d\n",
		st.Served, st.Rejected, st.BadRequests, st.Panics, st.Dropped)
}

// runDemo plays the client role against the live server: encrypt, ship,
// decrypt, compare to plaintext inference, retrying through transient
// refusals with the backoff policy.
func runDemo(params ckks.Parameters, pnet *cnn.Network, henet *hecnn.Network,
	pk *ckks.PublicKey, sk *ckks.SecretKey, addr string, n int) {
	client := mlaas.NewClient(params, henet, pk, sk, 2)
	dial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	for i := 0; i < n; i++ {
		img := cnn.NewTensor(pnet.InC, pnet.InH, pnet.InW)
		rng := rand.New(rand.NewSource(int64(100 + i)))
		for j := range img.Data {
			img.Data[j] = rng.Float64()
		}
		want := pnet.Infer(img)

		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		start := time.Now()
		got, err := client.InferRetry(ctx, dial, img, mlaas.RetryPolicy{Seed: int64(i)})
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "demo inference %d: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Printf("demo inference %d: %v, class %d (plaintext %d)\n",
			i, time.Since(start).Round(time.Millisecond), cnn.Argmax(got), cnn.Argmax(want))
	}
	fmt.Printf("demo traffic: %d bytes sent, %d received, %d retries\n",
		client.BytesSent, client.BytesReceived, client.Retries)
}

// runHedgedDemo plays the client role across a replica set: every
// inference goes through InferHedged, so per-replica circuit breakers,
// in-round failover, and latency-triggered hedging are all live, and CRC
// frame checking catches any transit corruption. The local server is
// always the first endpoint; the extras may be down — the fleet answers
// as long as one replica does.
func runHedgedDemo(params ckks.Parameters, pnet *cnn.Network, henet *hecnn.Network,
	pk *ckks.PublicKey, sk *ckks.SecretKey, addrs []string, n int) {
	client := mlaas.NewClient(params, henet, pk, sk, 2)
	client.FrameCheck = true
	eps := make([]mlaas.Endpoint, 0, len(addrs))
	for _, a := range addrs {
		if a = strings.TrimSpace(a); a != "" {
			eps = append(eps, mlaas.TCPEndpoint("", a))
		}
	}
	policy := mlaas.FailoverPolicy{Hedge: true}
	for i := 0; i < n; i++ {
		img := cnn.NewTensor(pnet.InC, pnet.InH, pnet.InW)
		rng := rand.New(rand.NewSource(int64(100 + i)))
		for j := range img.Data {
			img.Data[j] = rng.Float64()
		}
		want := pnet.Infer(img)

		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		start := time.Now()
		got, err := client.InferHedged(ctx, eps, img, policy)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hedged demo inference %d: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Printf("hedged demo inference %d: %v, class %d (plaintext %d)\n",
			i, time.Since(start).Round(time.Millisecond), cnn.Argmax(got), cnn.Argmax(want))
	}
	for _, ep := range eps {
		fmt.Printf("hedged demo endpoint %s: breaker %s\n", ep.Name, client.EndpointBreakerState(ep.Name))
	}
	fmt.Printf("hedged demo traffic: %d bytes sent, %d received, %d retries, %d hedges\n",
		client.BytesSent, client.BytesReceived, client.Retries, client.Hedges)
}

// runBatchedDemo fires n concurrent batched inferences so the server's
// scheduler actually coalesces them into shared evaluations, then checks
// each client got its own image's class back.
func runBatchedDemo(bparams ckks.Parameters, pnet *cnn.Network, bnet *hecnn.BatchedNetwork,
	bpk *ckks.PublicKey, bsk *ckks.SecretKey, addr string, n int) {
	start := time.Now()
	var wg sync.WaitGroup
	failed := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			img := cnn.NewTensor(pnet.InC, pnet.InH, pnet.InW)
			rng := rand.New(rand.NewSource(int64(100 + i)))
			for j := range img.Data {
				img.Data[j] = rng.Float64()
			}
			want := cnn.Argmax(pnet.Infer(img))

			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				failed[i] = err
				return
			}
			defer conn.Close()
			client := mlaas.NewBatchClient(bparams, bnet, bpk, bsk, int64(200+i))
			got, err := client.Infer(ctx, conn, img)
			if err != nil {
				failed[i] = err
				return
			}
			fmt.Printf("batched demo inference %d: class %d (plaintext %d)\n", i, cnn.Argmax(got), want)
		}(i)
	}
	wg.Wait()
	for i, err := range failed {
		if err != nil {
			fmt.Fprintf(os.Stderr, "batched demo inference %d: %v\n", i, err)
			os.Exit(1)
		}
	}
	fmt.Printf("batched demo: %d concurrent inferences in %v\n", n, time.Since(start).Round(time.Millisecond))
}
