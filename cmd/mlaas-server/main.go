// Command mlaas-server runs the hardened MLaaS inference server on a TCP
// listener with flag-configurable limits: concurrency slots, an optional
// admission queue (-queue-depth) where bursts wait out saturation instead
// of bouncing busy, per-I/O deadlines, and a total per-request budget.
// SIGINT/SIGTERM triggers a graceful drain — in-flight inferences
// complete, new connections are refused with a typed shutting-down
// status, and the drop count is reported if the drain deadline expires.
//
// Serve-path caching: the server pre-encodes every weight/bias plaintext
// at the exact levels and scales the compiled plan consumes, so
// steady-state requests perform zero encodings; -cache-bytes bounds the
// resident cache (negative disables it).
//
// Parallelism: -workers sizes the shared evaluation worker pool (0 =
// GOMAXPROCS, 1 = serial; results are bit-identical either way) and
// -hoist compiles KS layers to serve each rotation ladder from one shared
// keyswitch decomposition.
//
// The reproduction keeps key generation in-process (the demo client and
// server share a key ceremony at startup), so -demo N serves N local
// client inferences and then drains; without -demo the server runs until
// a signal arrives.
//
// Telemetry: -metrics-addr serves the metrics registry (Prometheus text
// at /metrics, JSON at /metrics.json) plus net/http/pprof under
// /debug/pprof/; -slow-threshold enables the structured slow-request log
// with its per-layer breakdown; -digest-interval prints a periodic
// one-line operational digest (req/s, evaluate p50/p99, busy refusals).
//
// Usage:
//
//	mlaas-server -addr 127.0.0.1:7100 -max-concurrent 4
//	mlaas-server -demo 3 -io-timeout 5s
//	mlaas-server -workers 8 -hoist -demo 3
//	mlaas-server -metrics-addr 127.0.0.1:7190 -slow-threshold 5s -digest-interval 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fxhenn/internal/ckks"
	"fxhenn/internal/cnn"
	"fxhenn/internal/hecnn"
	"fxhenn/internal/mlaas"
	"fxhenn/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	netName := flag.String("net", "tiny", "network: tiny, tinyconv or mnist")
	seed := flag.Int64("seed", 1, "weight/key seed")
	maxConcurrent := flag.Int("max-concurrent", 4, "evaluation slots before requests are refused busy")
	queueDepth := flag.Int("queue-depth", 0, "admission queue: requests beyond the evaluation slots wait here, up to their budget, before busy (0 = fail fast)")
	cacheBytes := flag.Int64("cache-bytes", 0, "byte budget for the encoded-weight plaintext cache (0 = default, negative disables caching)")
	workers := flag.Int("workers", 0, "evaluation worker pool size shared by all requests (0 = GOMAXPROCS, 1 = serial)")
	hoist := flag.Bool("hoist", false, "compile KS layers with hoisted rotations (shared keyswitch decompositions)")
	ioTimeout := flag.Duration("io-timeout", 30*time.Second, "rolling per-read/write deadline")
	requestBudget := flag.Duration("request-budget", 2*time.Minute, "total wall-clock budget per request")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	demo := flag.Int("demo", 0, "serve N in-process demo inferences, then drain and exit")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /debug/pprof/ on this address (empty disables)")
	slowThreshold := flag.Duration("slow-threshold", 0, "log requests slower than this with their per-layer breakdown (0 disables)")
	digestInterval := flag.Duration("digest-interval", 0, "print a one-line telemetry digest at this interval (0 disables)")
	flag.Parse()

	var (
		pnet   *cnn.Network
		params ckks.Parameters
	)
	switch *netName {
	case "tiny":
		pnet = cnn.NewTinyNet()
		params = ckks.NewParameters(8, 30, 7, 45)
	case "tinyconv":
		pnet = cnn.NewTinyConvNet()
		params = ckks.NewParameters(8, 30, 7, 45)
	case "mnist":
		pnet = cnn.NewMNISTNet()
		params = ckks.ParamsMNIST()
	default:
		fmt.Fprintf(os.Stderr, "unknown network %q\n", *netName)
		os.Exit(2)
	}
	pnet.InitWeights(*seed)
	henet := hecnn.CompileWith(pnet, params.Slots(), hecnn.Options{Hoist: *hoist})

	// Key ceremony: the secret key stays with the client role; the server
	// receives only evaluation keys.
	kg := ckks.NewKeyGenerator(params, *seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rtk := kg.GenRotationKeys(sk, henet.RotationsNeeded(params.MaxLevel()), false)

	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
	}
	server := mlaas.NewServerWithConfig(params, henet, rlk, rtk, mlaas.Config{
		MaxConcurrent:        *maxConcurrent,
		QueueDepth:           *queueDepth,
		CacheBytes:           *cacheBytes,
		IOTimeout:            *ioTimeout,
		RequestBudget:        *requestBudget,
		Workers:              *workers,
		Metrics:              reg,
		SlowRequestThreshold: *slowThreshold,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mlaas-server: %s on %s (slots=%d workers=%d io-timeout=%v budget=%v)\n",
		pnet.Name, l.Addr(), *maxConcurrent, server.PoolStats().Workers, *ioTimeout, *requestBudget)

	if reg != nil {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("mlaas-server: metrics and pprof on http://%s/metrics\n", ml.Addr())
		go func() {
			if err := http.Serve(ml, telemetry.NewMux(reg)); err != nil {
				fmt.Fprintf(os.Stderr, "mlaas-server: metrics server stopped: %v\n", err)
			}
		}()
	}

	digestStop := make(chan struct{})
	defer close(digestStop)
	go server.RunDigest(os.Stdout, *digestInterval, digestStop)

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(l) }()

	if *demo > 0 {
		runDemo(params, pnet, henet, pk, sk, l.Addr().String(), *demo)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		select {
		case s := <-sig:
			fmt.Printf("mlaas-server: received %v, draining\n", s)
		case err := <-serveErr:
			fmt.Fprintf(os.Stderr, "mlaas-server: serve failed: %v\n", err)
			os.Exit(1)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := server.Shutdown(ctx); err != nil {
		st := server.Stats()
		fmt.Fprintf(os.Stderr, "mlaas-server: drain incomplete: %v (dropped=%d)\n", err, st.Dropped)
		os.Exit(1)
	}
	st := server.Stats()
	fmt.Printf("mlaas-server: drained; served=%d rejected=%d bad=%d panics=%d dropped=%d\n",
		st.Served, st.Rejected, st.BadRequests, st.Panics, st.Dropped)
}

// runDemo plays the client role against the live server: encrypt, ship,
// decrypt, compare to plaintext inference, retrying through transient
// refusals with the backoff policy.
func runDemo(params ckks.Parameters, pnet *cnn.Network, henet *hecnn.Network,
	pk *ckks.PublicKey, sk *ckks.SecretKey, addr string, n int) {
	client := mlaas.NewClient(params, henet, pk, sk, 2)
	dial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	for i := 0; i < n; i++ {
		img := cnn.NewTensor(pnet.InC, pnet.InH, pnet.InW)
		rng := rand.New(rand.NewSource(int64(100 + i)))
		for j := range img.Data {
			img.Data[j] = rng.Float64()
		}
		want := pnet.Infer(img)

		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		start := time.Now()
		got, err := client.InferRetry(ctx, dial, img, mlaas.RetryPolicy{Seed: int64(i)})
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "demo inference %d: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Printf("demo inference %d: %v, class %d (plaintext %d)\n",
			i, time.Since(start).Round(time.Millisecond), cnn.Argmax(got), cnn.Argmax(want))
	}
	fmt.Printf("demo traffic: %d bytes sent, %d received, %d retries\n",
		client.BytesSent, client.BytesReceived, client.Retries)
}
