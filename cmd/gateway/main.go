// Command gateway runs the stateless multi-tenant front door of a
// sharded evaluator fleet: it peeks each request's tenant routing frame,
// picks the tenant's home shard on a consistent-hash ring, and splices
// bytes between client and shard without ever parsing a ciphertext.
// Tenant state (keys, compiled network, warmed plaintext cache) lives on
// the shards — run any number of gateways in front of the same fleet.
//
// Shards are named endpoints (-shards name=addr,...); unreachable ones
// trip a per-shard dial breaker (-breaker-threshold, -breaker-cooldown)
// and requests re-route deterministically to the tenant's next shard in
// ring order. When no shard answers, clients get a typed busy refusal in
// the protocol's own vocabulary, so their normal backoff applies.
//
// SIGINT/SIGTERM closes the listener and tears down active splices.
// -metrics-addr serves the gateway's routing counters (Prometheus text
// at /metrics, JSON at /metrics.json).
//
// Usage:
//
//	gateway -addr 127.0.0.1:7200 -shards a=127.0.0.1:7100,b=127.0.0.1:7101
//	gateway -shards a=10.0.0.2:7100 -breaker-threshold 5 -breaker-cooldown 10s
//	gateway -addr 127.0.0.1:7200 -shards a=127.0.0.1:7100 -metrics-addr 127.0.0.1:7290
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fxhenn/internal/gateway"
	"fxhenn/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	shardList := flag.String("shards", "", "comma-separated name=addr evaluator shards (required)")
	ioTimeout := flag.Duration("io-timeout", 30*time.Second, "client/shard deadline and shard dial budget")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive dial failures that open a shard's breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker rejects before allowing a probe")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /metrics.json on this address (empty disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for active splices")
	flag.Parse()

	shards, err := parseShards(*shardList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shards: %v\n", err)
		os.Exit(2)
	}
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "at least one -shards name=addr entry is required")
		os.Exit(2)
	}

	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
	}
	gw := gateway.New(gateway.Config{
		IOTimeout:        *ioTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Metrics:          reg,
	}, shards...)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("gateway: %s fronting %d shards %v\n", l.Addr(), len(shards), gw.Shards())

	if reg != nil {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("gateway: metrics on http://%s/metrics\n", ml.Addr())
		go func() {
			if err := http.Serve(ml, telemetry.NewMux(reg)); err != nil {
				fmt.Fprintf(os.Stderr, "gateway: metrics server stopped: %v\n", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- gw.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("gateway: received %v, shutting down\n", s)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "gateway: serve failed: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "gateway: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("gateway: stopped")
}

// parseShards turns "a=host:port,b=host:port" into the shard set.
func parseShards(s string) ([]gateway.Shard, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []gateway.Shard
	seen := map[string]bool{}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, addr, ok := strings.Cut(entry, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("entry %q is not name=addr", entry)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate shard name %q", name)
		}
		seen[name] = true
		out = append(out, gateway.Shard{Name: name, Addr: addr})
	}
	return out, nil
}
