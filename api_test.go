package fxhenn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fxhenn/internal/ckks"
	"fxhenn/internal/cnn"
)

// TestPublicAPIFlow walks the whole advertised flow at reduced geometry:
// compile → profile → DSE → design, plus a real encrypted inference.
func TestPublicAPIFlow(t *testing.T) {
	// Paper-profile path.
	design, err := BuildAccelerator(PaperMNISTProfile(), ACU9EG)
	if err != nil {
		t.Fatal(err)
	}
	if design.LatencySeconds() <= 0 {
		t.Fatal("no latency")
	}
	if len(design.HLSDirectives()) == 0 {
		t.Fatal("no directives")
	}

	// Derived-profile path.
	params := MNISTParams()
	net := Compile(NewMNISTCNN(), params.Slots())
	p := ProfileOf("ours", net, params, 128)
	if p.TotalHOPs() < 800 {
		t.Fatalf("derived profile HOPs %d", p.TotalHOPs())
	}
	if _, err := Explore(p, ACU15EG); err != nil {
		t.Fatal(err)
	}
	bl := Baseline(p, ACU9EG)
	if bl.Cycles <= 0 {
		t.Fatal("baseline empty")
	}
}

// TestEncryptedInferenceViaAPI runs the tiny functional network through the
// public facade.
func TestEncryptedInferenceViaAPI(t *testing.T) {
	params := ckks.NewParameters(8, 30, 7, 45)
	pnet := cnn.NewTinyNet()
	pnet.InitWeights(5)
	net := Compile(pnet, params.Slots())
	ctx := NewHEContext(params, 9, net.RotationsNeeded(params.MaxLevel()))

	img := cnn.NewTensor(1, 8, 8)
	rng := rand.New(rand.NewSource(6))
	for i := range img.Data {
		img.Data[i] = rng.Float64()
	}
	want := pnet.Infer(img)
	got, _ := net.Run(ctx, img)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-2 {
			t.Fatalf("logit %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestParamsAccessorsAPI(t *testing.T) {
	if MNISTParams().N() != 8192 || CIFAR10Params().N() != 16384 {
		t.Fatal("parameter presets wrong")
	}
	if PaperCIFAR10Profile().TotalKS() != 57000 {
		t.Fatal("paper CIFAR profile wrong")
	}
	if ACU9EG.DSP != 2520 || ACU15EG.DSP != 3528 {
		t.Fatal("device exports wrong")
	}
	if NewCIFAR10CNN().Name != "FxHENN-CIFAR10" {
		t.Fatal("CIFAR CNN export wrong")
	}
}

// ExampleBuildAccelerator demonstrates the one-call framework flow.
func ExampleBuildAccelerator() {
	design, err := BuildAccelerator(PaperMNISTProfile(), ACU9EG)
	if err != nil {
		panic(err)
	}
	fmt.Printf("network: %s\n", design.Profile.Name)
	fmt.Printf("device: %s\n", design.Device.Name)
	fmt.Printf("latency: %.3f s\n", design.LatencySeconds())
	fmt.Printf("nc_NTT: %d\n", design.Config().NcNTT)
	// Output:
	// network: FxHENN-MNIST
	// device: ACU9EG
	// latency: 0.162 s
	// nc_NTT: 4
}
