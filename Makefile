GO ?= go

.PHONY: build test verify race bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the serving-layer gate: static checks plus the fault-injection
# and protocol suites under the race detector. Run it before touching
# internal/mlaas, internal/faultnet, or the wire format.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/mlaas/... ./internal/faultnet/...

# race runs the whole tree under the race detector (slower than verify).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

clean:
	$(GO) clean ./...
