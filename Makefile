GO ?= go

.PHONY: build test verify race bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the serving-layer gate: static checks plus the fault-injection,
# protocol, and telemetry suites under the race detector. Run it before
# touching internal/mlaas, internal/faultnet, internal/telemetry, or the
# wire format.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/mlaas/... ./internal/faultnet/... ./internal/telemetry/... ./internal/hecnn/... ./internal/parallel/... ./internal/ckks/...

# race runs the whole tree under the race detector (slower than verify).
race:
	$(GO) test -race ./...

# bench runs the full benchmark suite and writes BENCH_inference.json
# with the ns/op of the per-network encrypted-inference benchmarks. The
# intermediate file keeps go test's exit code visible through the pipe.
bench:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -bench=. -benchtime=1x -run=^$$ . > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	./bin/benchjson -out BENCH_inference.json < bench.out
	rm -f bench.out

clean:
	$(GO) clean ./...
