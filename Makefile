GO ?= go

# COVERAGE_FLOOR is the committed minimum total statement coverage over
# ./internal/... (the tree sat at ~90.2% when the floor was last raised,
# after the gateway/registry cluster suites landed); `make cover` and the
# CI coverage job fail below it.
COVERAGE_FLOOR ?= 89.5

.PHONY: build test verify race bench cover clean artifact

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the serving-layer gate: static checks plus the fault-injection,
# protocol, and telemetry suites under the race detector. Run it before
# touching internal/mlaas, internal/faultnet, internal/telemetry, or the
# wire format.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/mlaas/... ./internal/gateway/... ./internal/registry/... ./internal/faultnet/... ./internal/telemetry/... ./internal/hecnn/... ./internal/parallel/... ./internal/ckks/... ./internal/cache/...

# race runs the whole tree under the race detector (slower than verify).
race:
	$(GO) test -race ./...

# bench writes BENCH_inference.json: the per-network encrypted-inference
# benchmarks plus the per-op Kernel_ microbenchmarks the CI kernel gate
# compares. Two passes: the heavyweight MNIST rows run one iteration
# each, while the rows ci.yml actually gates (Inference_Tiny*, Kernel_*)
# run in their own fresh process at -benchtime=5x — the exact conditions
# the gate re-measures them under, isolated from the gigabytes of
# garbage the MNIST rows leave behind (observed inflating the kernel
# rows up to 3.5× when they shared the process). Both passes use
# -count=3 and benchjson collapses the samples per row to their median:
# multi-second host contention windows were observed inflating a single
# seconds-long sample up to 4×, and a median-of-3 baseline can't be
# skewed by one of them. Each run is also appended to the rolling
# BENCH_history.jsonl, so before/after pairs of an optimization are
# preserved locally. The intermediate file keeps go test's exit code
# visible through the pipe.
bench:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -bench='Inference_MNIST|Train' -benchtime=1x -count=3 -run=^$$ . > bench.out || (cat bench.out; rm -f bench.out; exit 1)
	$(GO) test -bench='Inference_Tiny|Kernel_' -benchtime=5x -count=3 -run=^$$ . >> bench.out || (cat bench.out; rm -f bench.out; exit 1)
	./bin/benchjson -out BENCH_inference.json -history BENCH_history.jsonl -regress-pct 10000 < bench.out
	rm -f bench.out

# artifact is the one-command paper reproduction (ARTIFACT.md): verify
# the committed EXPERIMENTS.md table bodies are current, then emit the
# full bundle — every paper table as CSV/markdown/LaTeX under artifact/
# plus the measured open-loop serving curves and their
# artifact/BENCH_loadgen.json rows. ARTIFACT_MODE=full enlarges the
# measured grids (quick runs in seconds, full in minutes).
ARTIFACT_MODE ?= quick
artifact:
	$(GO) run ./cmd/artifact -check
	$(GO) run ./cmd/artifact -mode $(ARTIFACT_MODE)

# cover writes coverage.out over the internal packages and enforces the
# committed floor. CI uploads the profile as an artifact.
cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	@$(GO) tool cover -func=coverage.out | tail -1
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	awk -v t="$$total" -v floor="$(COVERAGE_FLOOR)" 'BEGIN { \
		if (t+0 < floor+0) { printf "coverage %.1f%% below floor %.1f%%\n", t, floor; exit 1 } \
		printf "coverage %.1f%% meets floor %.1f%%\n", t, floor }'

clean:
	$(GO) clean ./...
