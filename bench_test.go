package fxhenn

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md §5 maps each to its experiment). Each benchmark
// regenerates its table/figure through the experiment engine; run with
//
//	go test -bench=. -benchmem
//
// and use cmd/experiments to print the actual tables.

import (
	"context"
	"io"
	"net"
	"runtime"
	"testing"

	"fxhenn/internal/ckks"
	"fxhenn/internal/cnn"
	"fxhenn/internal/dse"
	"fxhenn/internal/experiments"
	"fxhenn/internal/fpga"
	"fxhenn/internal/hecnn"
	"fxhenn/internal/hemodel"
	"fxhenn/internal/mlaas"
	"fxhenn/internal/modarith"
	"fxhenn/internal/parallel"
	"fxhenn/internal/profile"
	"fxhenn/internal/ring"
	"fxhenn/internal/telemetry"
	"fxhenn/internal/workload"
)

var benchEnv *experiments.Env

func env(b *testing.B) *experiments.Env {
	b.Helper()
	if benchEnv == nil {
		benchEnv = experiments.NewEnv()
	}
	return benchEnv
}

func BenchmarkTable1_OpModules(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TableI(io.Discard)
	}
}

func BenchmarkTable2_PreliminaryDesign(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TableII(io.Discard)
	}
}

func BenchmarkTable3_BRAMImpact(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TableIII(io.Discard)
	}
}

func BenchmarkTable4_MACComparison(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TableIV(io.Discard)
	}
}

func BenchmarkTable5_DSEConfigs(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TableV(io.Discard)
	}
}

func BenchmarkTable6_Networks(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TableVI(io.Discard)
	}
}

func BenchmarkTable7_EndToEnd(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TableVII(io.Discard)
	}
}

func BenchmarkTable8_ConvVsFPL21(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TableVIII(io.Discard)
	}
}

func BenchmarkTable9_BaselineVsFxHENN(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TableIX(io.Discard)
	}
}

func BenchmarkFig7_PerLayerBRAM(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Fig7(io.Discard)
	}
}

func BenchmarkFig8_PerLayerDSP(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Fig8(io.Discard)
	}
}

func BenchmarkFig9_ParetoFrontier(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Fig9(io.Discard)
	}
}

func BenchmarkFig10_Parallelism(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Fig10(io.Discard)
	}
}

// --- component-level benchmarks ---

// BenchmarkDSE_MNIST measures one full exhaustive exploration (the paper
// reports "a few seconds" for a few thousand design points; ours runs in
// milliseconds).
func BenchmarkDSE_MNIST(b *testing.B) {
	p := profile.PaperMNIST()
	for i := 0; i < b.N; i++ {
		if _, err := dse.Explore(p, fpga.ACU9EG); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSE_CIFAR10 explores the large network's space.
func BenchmarkDSE_CIFAR10(b *testing.B) {
	p := profile.PaperCIFAR10()
	for i := 0; i < b.N; i++ {
		if _, err := dse.Explore(p, fpga.ACU15EG); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLatencyModel measures one network latency evaluation (the DSE
// inner loop).
func BenchmarkLatencyModel(b *testing.B) {
	p := profile.PaperMNIST()
	g := hemodel.GeometryFor(p)
	c := hemodel.DefaultConfig()
	for i := 0; i < b.N; i++ {
		c.NetworkLatencyCycles(p, g)
	}
}

// BenchmarkHECNNDryRun measures the op-count dry run of FxHENN-CIFAR10
// (~128K recorded HE operations).
func BenchmarkHECNNDryRun(b *testing.B) {
	net := hecnn.Compile(cnn.NewCIFAR10Net(), 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Count(7)
	}
}

// BenchmarkEncryptedTinyInference measures a full functional encrypted
// inference at reduced geometry (conv→square→fc→square→fc on N=256).
func BenchmarkEncryptedTinyInference(b *testing.B) {
	params := ckks.NewParameters(8, 30, 7, 45)
	pnet := cnn.NewTinyNet()
	pnet.InitWeights(1)
	net := hecnn.Compile(pnet, params.Slots())
	ctx := hecnn.NewContext(params, 2, net.RotationsNeeded(params.MaxLevel()))
	img := cnn.NewTensor(1, 8, 8)
	for i := range img.Data {
		img.Data[i] = float64(i%7) / 7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Run(ctx, img)
	}
}

// BenchmarkAblations runs the design-choice ablation suite (fine vs coarse
// pipelining, buffer reuse, module reuse, DRAM spill).
func BenchmarkAblations(b *testing.B) {
	p := profile.PaperMNIST()
	for i := 0; i < b.N; i++ {
		if _, err := dse.Ablate(p, fpga.ACU9EG); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLaaSInference measures one full client-server encrypted
// inference round trip over an in-memory connection (reduced geometry).
func BenchmarkMLaaSInference(b *testing.B) {
	params := ckks.NewParameters(8, 30, 7, 45)
	pnet := cnn.NewTinyNet()
	pnet.InitWeights(1)
	henet := hecnn.Compile(pnet, params.Slots())
	kg := ckks.NewKeyGenerator(params, 2)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rtk := kg.GenRotationKeys(sk, henet.RotationsNeeded(params.MaxLevel()), false)
	server := mlaas.NewServer(params, henet, rlk, rtk)
	client := mlaas.NewClient(params, henet, pk, sk, 3)
	img := workload.Image(1, 8, 8, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cliConn, srvConn := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer srvConn.Close()
			server.Handle(srvConn)
		}()
		if _, err := client.Infer(context.Background(), cliConn, img); err != nil {
			b.Fatal(err)
		}
		cliConn.Close()
		<-done
	}
}

// benchWireInference measures the full wire exchange — encrypt, ship
// over net.Pipe, evaluate, decrypt — with tracing either absent (the
// byte-identical legacy path) or fully attached on both sides: flight
// recorders, exemplar-linked metrics, and wire-propagated trace
// contexts. The Inference_Tiny_Wire / Inference_Tiny_WireTraced pair is
// the tracing-overhead row PERFORMANCE.md §8 reports; benchjson prints
// the ratio whenever both rows are in a run.
func benchWireInference(b *testing.B, traced bool) {
	params := ckks.NewParameters(8, 30, 7, 45)
	pnet := cnn.NewTinyNet()
	pnet.InitWeights(1)
	henet := hecnn.Compile(pnet, params.Slots())
	kg := ckks.NewKeyGenerator(params, 2)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rtk := kg.GenRotationKeys(sk, henet.RotationsNeeded(params.MaxLevel()), false)
	cfg := mlaas.Config{}
	if traced {
		cfg.Flight = telemetry.NewFlightRecorder(telemetry.FlightConfig{SampleRate: 1})
		cfg.Metrics = telemetry.NewRegistry()
	}
	server := mlaas.NewServerWithConfig(params, henet, rlk, rtk, cfg)
	client := mlaas.NewClient(params, henet, pk, sk, 3)
	if traced {
		client.Flight = telemetry.NewFlightRecorder(telemetry.FlightConfig{SampleRate: 1})
	}
	img := workload.Image(1, 8, 8, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cliConn, srvConn := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer srvConn.Close()
			server.Handle(srvConn)
		}()
		if _, err := client.Infer(context.Background(), cliConn, img); err != nil {
			b.Fatal(err)
		}
		cliConn.Close()
		<-done
	}
}

func BenchmarkInference_Tiny_Wire(b *testing.B) { benchWireInference(b, false) }

func BenchmarkInference_Tiny_WireTraced(b *testing.B) { benchWireInference(b, true) }

// benchInference measures one full functional encrypted inference
// (pack → encrypt → evaluate → decrypt) for a network/parameter pair.
// These are the rows of BENCH_inference.json (make bench). workers sizes
// the evaluation worker pool (0 = GOMAXPROCS, 1 = serial — no pool), and
// opts selects the compile mode; the _Parallel and _Hoisted benchmark
// variants differ from the base rows only in those two knobs, so the
// ratio base/variant is the speedup PERFORMANCE.md reports.
func benchInference(b *testing.B, pnet *cnn.Network, params ckks.Parameters, workers int, opts hecnn.Options) {
	if workers != 1 {
		params.AttachPool(parallel.New(workers))
	}
	pnet.InitWeights(1)
	net := hecnn.CompileWith(pnet, params.Slots(), opts)
	ctx := hecnn.NewContext(params, 2, net.RotationsNeeded(params.MaxLevel()))
	img := cnn.NewTensor(pnet.InC, pnet.InH, pnet.InW)
	for i := range img.Data {
		img.Data[i] = float64(i%7) / 7
	}
	// Drain the previous benchmark's garbage (a full-suite run leaves
	// gigabytes behind) so its collection isn't charged to this row.
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Run(ctx, img)
	}
}

// benchInferenceCached is benchInference through a warmed
// hecnn.CompiledNetwork: every weight/bias plaintext is pre-encoded at
// its consumed (level, scale), so the loop performs zero Encoder.Encode
// calls for model operands. Same serial workers=1 setup as the base rows,
// so the base/_Cached ratio isolates the encoding saved per inference.
// cacheBytes is the plaintext-cache budget (0 = the 256 MiB default,
// negative = unbounded): a budget smaller than the operand set thrashes
// the LRU — every request re-encodes evicted entries — which is slower
// than not caching at all, so rows whose operand set exceeds the
// default must size it explicitly, exactly as a server operator must
// size -cache-bytes.
func benchInferenceCached(b *testing.B, pnet *cnn.Network, params ckks.Parameters, cacheBytes int64, opts hecnn.Options) {
	pnet.InitWeights(1)
	net := hecnn.CompileWith(pnet, params.Slots(), opts)
	ctx := hecnn.NewContext(params, 2, net.RotationsNeeded(params.MaxLevel()))
	cn := hecnn.NewCompiledNetwork(net, params, ctx.Encoder, cacheBytes)
	cn.Warm(params.MaxLevel())
	img := cnn.NewTensor(pnet.InC, pnet.InH, pnet.InW)
	for i := range img.Data {
		img.Data[i] = float64(i%7) / 7
	}
	// One untimed inference reaches the steady state the row documents:
	// cache hits verified warm, allocator spans grown to working-set
	// size. A cold first iteration otherwise dominates -benchtime=1x.
	cn.Run(ctx, img)
	// Drain the warm-up's (and the previous benchmark's) garbage so its
	// collection isn't charged to the timed iterations.
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cn.Run(ctx, img)
	}
}

func BenchmarkInference_Tiny(b *testing.B) {
	benchInference(b, cnn.NewTinyNet(), ckks.NewParameters(8, 30, 7, 45), 1, hecnn.Options{})
}

func BenchmarkInference_Tiny_Parallel(b *testing.B) {
	benchInference(b, cnn.NewTinyNet(), ckks.NewParameters(8, 30, 7, 45), 0, hecnn.Options{})
}

func BenchmarkInference_TinyConv(b *testing.B) {
	benchInference(b, cnn.NewTinyConvNet(), ckks.NewParameters(8, 30, 7, 45), 1, hecnn.Options{})
}

func BenchmarkInference_TinyConv_Parallel(b *testing.B) {
	benchInference(b, cnn.NewTinyConvNet(), ckks.NewParameters(8, 30, 7, 45), 0, hecnn.Options{})
}

// BenchmarkInference_MNIST is the paper-parameter workload (N=8192):
// one iteration is ~15 s of software CKKS.
func BenchmarkInference_MNIST(b *testing.B) {
	benchInference(b, cnn.NewMNISTNet(), ckks.ParamsMNIST(), 1, hecnn.Options{})
}

// BenchmarkInference_MNIST_Parallel is the workload the pool is sized
// for: 8192-coefficient limbs and 8-digit key switches fan out across
// GOMAXPROCS workers, bit-identical to the serial row above.
func BenchmarkInference_MNIST_Parallel(b *testing.B) {
	benchInference(b, cnn.NewMNISTNet(), ckks.ParamsMNIST(), 0, hecnn.Options{})
}

// BenchmarkInference_MNIST_Hoisted additionally compiles the rotation
// ladders to share one keyswitch decomposition per ladder (Halevi-Shoup
// hoisting) on top of the worker pool.
func BenchmarkInference_MNIST_Hoisted(b *testing.B) {
	benchInference(b, cnn.NewMNISTNet(), ckks.ParamsMNIST(), 0, hecnn.Options{Hoist: true})
}

// BenchmarkInference_MNIST_BSGS compiles the interior linear layers as
// BSGS diagonal transforms (DESIGN.md §16): O(√D) keyswitches per dense
// layer instead of the rotate-and-sum ladder. Serial like the base MNIST
// row, so base/BSGS is the diagonal-method speedup PERFORMANCE.md
// reports.
func BenchmarkInference_MNIST_BSGS(b *testing.B) {
	benchInference(b, cnn.NewMNISTNet(), ckks.ParamsMNIST(), 1, hecnn.Options{BSGS: true})
}

// BenchmarkInference_MNIST_BSGS_Cached is the BSGS serve-path steady
// state: every diagonal plaintext pre-encoded at its consumed (level,
// scale) through the same CompiledNetwork cache as the ladder rows.
// The MNIST diagonal operand set (~0.4 GB — one plaintext per nonzero
// diagonal) exceeds the 256 MiB default budget, so this row runs
// unbounded; with the default it would thrash (PERFORMANCE.md §5).
func BenchmarkInference_MNIST_BSGS_Cached(b *testing.B) {
	benchInferenceCached(b, cnn.NewMNISTNet(), ckks.ParamsMNIST(), -1, hecnn.Options{BSGS: true})
}

func BenchmarkInference_Tiny_Cached(b *testing.B) {
	benchInferenceCached(b, cnn.NewTinyNet(), ckks.NewParameters(8, 30, 7, 45), 0, hecnn.Options{})
}

func BenchmarkInference_TinyConv_Cached(b *testing.B) {
	benchInferenceCached(b, cnn.NewTinyConvNet(), ckks.NewParameters(8, 30, 7, 45), 0, hecnn.Options{})
}

// BenchmarkInference_MNIST_Cached is the serve-path steady state at paper
// parameters: the serial MNIST row minus every per-request weight encode.
func BenchmarkInference_MNIST_Cached(b *testing.B) {
	benchInferenceCached(b, cnn.NewMNISTNet(), ckks.ParamsMNIST(), 0, hecnn.Options{})
}

// BenchmarkEvaluateTracedNilTracer pins (as a benchmark, alongside the
// AllocsPerRun test in hecnn) that the traced entry point with telemetry
// disabled adds nothing to the evaluate hot path.
func BenchmarkEvaluateTracedNilTracer(b *testing.B) {
	pnet := cnn.NewTinyNet()
	pnet.InitWeights(3)
	net := hecnn.Compile(pnet, 256)
	rec := hecnn.NewRecorder()
	be := hecnn.NewCountBackend(rec)
	conv := net.Layers[0].(*hecnn.ConvPacked)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cts := make([]*hecnn.CT, 0, conv.NumPositions())
		for j := 0; j < conv.NumPositions(); j++ {
			cts = append(cts, hecnn.FreshCT(7))
		}
		net.EvaluateTraced(be, cts, nil)
	}
}

// BenchmarkBatchAgreement measures the encrypted-vs-plaintext agreement
// sweep over a small structured-image batch.
func BenchmarkBatchAgreement(b *testing.B) {
	params := ckks.NewParameters(8, 30, 7, 45)
	pnet := cnn.NewTinyNet()
	pnet.InitWeights(5)
	henet := hecnn.Compile(pnet, params.Slots())
	ctx := hecnn.NewContext(params, 6, henet.RotationsNeeded(params.MaxLevel()))
	batch := workload.Batch(pnet, 2, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := workload.EvaluateAgreement(pnet, henet, ctx, batch)
		if err != nil {
			b.Fatal(err)
		}
		if r.AgreementRate() != 1 {
			b.Fatal("agreement lost")
		}
	}
}

// BenchmarkDSE_Parallel measures the worker-pool exploration.
func BenchmarkDSE_Parallel(b *testing.B) {
	p := profile.PaperMNIST()
	for i := 0; i < b.N; i++ {
		if _, err := dse.ExploreParallel(p, fpga.ACU9EG); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchedInference measures CryptoNets-style batched encrypted
// evaluation at reduced geometry (whole batch per run).
func BenchmarkBatchedInference(b *testing.B) {
	params := ckks.NewParameters(8, 30, 7, 45)
	pnet := cnn.NewTinyNet()
	pnet.InitWeights(9)
	bnet, err := hecnn.CompileBatched(pnet, params.Slots())
	if err != nil {
		b.Fatal(err)
	}
	ctx := hecnn.NewContext(params, 10, nil)
	images := workload.Batch(pnet, 4, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bnet.RunBatch(ctx, images); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInference_MNIST_Batched is the throughput path at paper scale:
// the MNIST network evaluated position-major for a batch of 8 images on
// the small derived batch ring (hecnn.BatchedParams — same modulus chain,
// smallest ring covering the batch), through the warmed broadcast-
// plaintext cache exactly as the serve path runs it. ns/op is the whole
// batch; the reported ns/image is what compares against the per-request
// Inference_MNIST row (the ≥4× per-image claim in PERFORMANCE.md).
func BenchmarkInference_MNIST_Batched(b *testing.B) {
	const occupancy = 8
	base := ckks.ParamsMNIST()
	pnet := cnn.NewMNISTNet()
	pnet.InitWeights(1)
	bp, err := hecnn.BatchedParams(base, occupancy)
	if err != nil {
		b.Fatal(err)
	}
	bnet, err := hecnn.CompileBatched(pnet, bp.Slots())
	if err != nil {
		b.Fatal(err)
	}
	ctx := hecnn.NewContext(bp, 2, nil)
	cb := hecnn.NewCompiledBatched(bnet, bp, ctx.Encoder, 0)
	cb.Warm(bp.MaxLevel())
	images := workload.Batch(pnet, occupancy, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cb.RunBatch(ctx, images); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*occupancy), "ns/image")
}

// --- per-op kernel benchmarks (the CI kernel regression gate) ---
//
// The BenchmarkKernel_* rows pin the modular-arithmetic hot paths at the
// paper ring geometry (N=8192, 30-bit NTT primes): the Harvey-lazy NTT
// butterflies, Montgomery vs Barrett coefficient multiplication, the
// lazy-MAC keyswitch inner row, and the NTT-domain automorphism. Each op
// performs kernelReps passes over one limb so even a -benchtime=1x CI
// run measures a stable chunk of work; ci.yml compares these rows
// against the committed BENCH_inference.json at the same 25% threshold
// as the inference rows, so a butterfly or reduction regression fails
// the build before it shows up as seconds of end-to-end latency.

// kernelReps is the inner repetition count of every Kernel_ benchmark:
// ns/op is kernelReps passes, identically in the committed baseline and
// in CI, so the ratio is unaffected.
const kernelReps = 16

// kernelOperands returns the paper-geometry ring, its first prime, and
// two deterministic canonical coefficient vectors. It forces a
// collection first: in a full-suite run the inference benchmarks leave
// gigabytes of garbage behind, and without the drain the GC pays for it
// inside the kernel timing windows (observed inflating the NTT row
// 3.5×), which both misstates the baseline and loosens the CI gate.
func kernelOperands() (*ring.Ring, modarith.Modulus, []uint64, []uint64) {
	runtime.GC()
	r := ckks.ParamsMNIST().Ring()
	m := r.Mods[0]
	a := make([]uint64, r.N)
	c := make([]uint64, r.N)
	s := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := range a {
		a[i] = next() % m.Q
		c[i] = next() % m.Q
	}
	return r, m, a, c
}

// BenchmarkKernel_NTTForward measures the forward negacyclic NTT of one
// N=8192 limb (Cooley-Tukey, Harvey-lazy butterflies, final reduction
// pass).
func BenchmarkKernel_NTTForward(b *testing.B) {
	r, _, a, _ := kernelOperands()
	t := r.Tables[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < kernelReps; j++ {
			t.Forward(a)
		}
	}
}

// BenchmarkKernel_NTTInverse measures the inverse NTT of one N=8192 limb
// (Gentleman-Sande, lazy butterflies, n⁻¹ fold).
func BenchmarkKernel_NTTInverse(b *testing.B) {
	r, _, a, _ := kernelOperands()
	t := r.Tables[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < kernelReps; j++ {
			t.Inverse(a)
		}
	}
}

// BenchmarkKernel_MulModBarrett measures the Barrett coefficient product
// kernel (MulVec) — the cold-path reference the Montgomery row is
// compared against in PERFORMANCE.md.
func BenchmarkKernel_MulModBarrett(b *testing.B) {
	_, m, a, c := kernelOperands()
	out := make([]uint64, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < kernelReps; j++ {
			m.MulVec(out, a, c)
		}
	}
}

// BenchmarkKernel_MulModMontgomery measures the Montgomery coefficient
// product kernel (MulMontVec) with the second operand pre-converted, the
// form every keyswitch MAC consumes.
func BenchmarkKernel_MulModMontgomery(b *testing.B) {
	_, m, a, c := kernelOperands()
	cMont := make([]uint64, len(c))
	m.MFormVec(cMont, c)
	out := make([]uint64, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < kernelReps; j++ {
			m.MulMontVec(out, a, cMont)
		}
	}
}

// BenchmarkKernel_KeySwitchRow measures one target row of the RNS
// keyswitch inner loop exactly as keySwitchCore runs it: per digit two
// lazy Montgomery MACs into unreduced accumulators, then one closing
// ReduceVec per accumulator.
func BenchmarkKernel_KeySwitchRow(b *testing.B) {
	_, m, a, c := kernelOperands()
	const digits = 7
	keyB := make([][]uint64, digits)
	keyA := make([][]uint64, digits)
	for d := range keyB {
		keyB[d] = make([]uint64, len(c))
		keyA[d] = make([]uint64, len(c))
		m.MFormVec(keyB[d], c)
		m.MFormVec(keyA[d], a)
	}
	acc0 := make([]uint64, len(a))
	acc1 := make([]uint64, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < kernelReps; j++ {
			for k := range acc0 {
				acc0[k] = 0
				acc1[k] = 0
			}
			for d := 0; d < digits; d++ {
				m.MulMontAddLazyVec(acc0, a, keyB[d])
				m.MulMontAddLazyVec(acc1, a, keyA[d])
			}
			m.ReduceVec(acc0, acc0)
			m.ReduceVec(acc1, acc1)
		}
	}
}

// BenchmarkKernel_Automorphism measures the NTT-domain Galois
// permutation of one limb (the per-rotation work a hoisted rotation
// pays after the shared decomposition).
func BenchmarkKernel_Automorphism(b *testing.B) {
	r, _, a, _ := kernelOperands()
	perm := r.NTTAutomorphismIndex(ckks.ParamsMNIST().GaloisElementForRotation(1))
	out := make([]uint64, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < kernelReps; j++ {
			ring.PermuteVec(out, a, perm)
		}
	}
}

// BenchmarkTrainTinyNet measures SGD training on the synthetic task.
func BenchmarkTrainTinyNet(b *testing.B) {
	train := workload.QuadrantDataset(1, 8, 8, 50, 1)
	for i := 0; i < b.N; i++ {
		net := cnn.NewTinyNet()
		net.InitWeights(5)
		if _, err := net.Train(train, cnn.TrainConfig{
			Epochs: 2, LearningRate: 0.01, Seed: 7, LogitScale: 0.05,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
