// Package fxhenn is a from-scratch Go reproduction of FxHENN (Zhu et al.,
// HPCA 2023): an automatic accelerator-generation framework for fully
// homomorphic encrypted CNN inference on FPGAs.
//
// The public API covers the full flow the paper describes:
//
//   - define (or use the paper's) CNN models and compile them into packed
//     HE-CNN networks over RNS-CKKS (LoLa-style packing);
//   - run real encrypted inference with the built-in CKKS implementation
//     and verify it against plaintext inference;
//   - extract the per-layer HE-operation workload profile;
//   - run design space exploration against an FPGA device model and obtain
//     an accelerator design: module parallelism, buffer plan, HLS
//     directives, and modeled latency/energy.
//
// The FPGA itself is simulated: calibrated resource–latency models stand in
// for the Vivado HLS toolchain (see DESIGN.md for the substitution
// rationale and calibration against the paper's measurements).
package fxhenn

import (
	"fxhenn/internal/accel"
	"fxhenn/internal/ckks"
	"fxhenn/internal/cnn"
	"fxhenn/internal/dse"
	"fxhenn/internal/fpga"
	"fxhenn/internal/hecnn"
	"fxhenn/internal/profile"
)

// Re-exported core types. The aliases are the public names; the internal
// packages carry the implementations.
type (
	// Device is an FPGA platform description (DSP/BRAM/URAM capacities).
	Device = fpga.Device
	// CNN is a plaintext convolutional network.
	CNN = cnn.Network
	// Tensor is a CHW input tensor.
	Tensor = cnn.Tensor
	// HECNN is a packed homomorphic network compiled from a CNN.
	HECNN = hecnn.Network
	// HEContext bundles CKKS keys and machinery for encrypted inference.
	HEContext = hecnn.Context
	// Profile is the per-layer HE-operation workload description that
	// drives design space exploration.
	Profile = profile.Network
	// Design is a generated accelerator design.
	Design = accel.Design
	// Parameters is a CKKS parameter set.
	Parameters = ckks.Parameters
	// DSEResult is a full exploration outcome (best design plus the
	// explored cloud, e.g. for Pareto plots).
	DSEResult = dse.Result
	// BaselineDesign is the no-reuse reference accelerator.
	BaselineDesign = dse.BaselineResult
)

// Evaluation platforms from the paper (§VII-A).
var (
	ACU9EG  = fpga.ACU9EG
	ACU15EG = fpga.ACU15EG
)

// NewMNISTCNN returns the FxHENN-MNIST network geometry (CryptoNets/LoLa).
func NewMNISTCNN() *CNN { return cnn.NewMNISTNet() }

// NewCIFAR10CNN returns the FxHENN-CIFAR10 network geometry.
func NewCIFAR10CNN() *CNN { return cnn.NewCIFAR10Net() }

// MNISTParams returns the paper's MNIST CKKS parameters (N=8192, L=7,
// 30-bit primes).
func MNISTParams() Parameters { return ckks.ParamsMNIST() }

// CIFAR10Params returns the paper's CIFAR-10 CKKS parameters (N=16384, L=7,
// 36-bit primes).
func CIFAR10Params() Parameters { return ckks.ParamsCIFAR10() }

// Compile translates a plaintext CNN into its packed HE-CNN form for the
// given slot capacity (params.Slots()).
func Compile(c *CNN, slots int) *HECNN { return hecnn.Compile(c, slots) }

// NewHEContext generates CKKS keys (including Galois keys for the given
// rotations — obtain them from HECNN.RotationsNeeded).
func NewHEContext(params Parameters, seed int64, rotations []int) *HEContext {
	return hecnn.NewContext(params, seed, rotations)
}

// ProfileOf dry-runs a compiled HE-CNN and returns its workload profile.
func ProfileOf(name string, n *HECNN, params Parameters, security int) *Profile {
	rec := n.Count(params.MaxLevel())
	return profile.FromRecorder(name, rec, params.LogN, params.L, params.QBits, security)
}

// PaperMNISTProfile returns the workload profile exactly as the paper
// publishes it (826 HOPs, 280 KeySwitches).
func PaperMNISTProfile() *Profile { return profile.PaperMNIST() }

// PaperCIFAR10Profile returns the published CIFAR-10 workload profile.
func PaperCIFAR10Profile() *Profile { return profile.PaperCIFAR10() }

// BuildAccelerator runs design space exploration for a workload on a device
// and returns the generated accelerator design.
func BuildAccelerator(p *Profile, dev Device) (*Design, error) {
	return accel.Generate(p, dev)
}

// Explore exposes the raw DSE result (the full design-point cloud).
func Explore(p *Profile, dev Device) (*DSEResult, error) {
	return dse.Explore(p, dev)
}

// Baseline builds the no-reuse reference design of §VII-C.
func Baseline(p *Profile, dev Device) *BaselineDesign {
	return dse.Baseline(p, dev)
}
